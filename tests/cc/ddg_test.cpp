#include "cc/ddg.hpp"

#include <gtest/gtest.h>

#include "cc/cluster_assign.hpp"
#include "isa/config.hpp"

namespace vexsim::cc {
namespace {

LOp def(VReg d, Opcode opc = Opcode::kMovi) {
  LOp op;
  op.opc = opc;
  op.dst = d;
  return op;
}

LOp use2(VReg d, VReg a, VReg b, Opcode opc = Opcode::kAdd) {
  LOp op;
  op.opc = opc;
  op.dst = d;
  op.src1 = a;
  op.src2 = b;
  return op;
}

int edge_latency(const BlockDdg& g, int from, int to) {
  for (const DdgEdge& e : g.succ[static_cast<std::size_t>(from)])
    if (e.to == to) return e.latency;
  return -1;
}

TEST(Ddg, RawEdgeCarriesProducerLatency) {
  LBlock blk;
  blk.body.push_back(def(0, Opcode::kMovi));         // 0: alu → lat 1
  LOp mul = use2(1, 0, 0, Opcode::kMpyl);            // 1: mul → lat 2
  blk.body.push_back(mul);
  blk.body.push_back(use2(2, 1, 1));                 // 2 reads the multiply
  blk.term = Terminator::kHalt;
  const BlockDdg g = build_ddg(blk, LatencyConfig{});
  EXPECT_EQ(edge_latency(g, 0, 1), 1);
  EXPECT_EQ(edge_latency(g, 1, 2), 2);
}

TEST(Ddg, BregProducerUsesCmpToBranchDelay) {
  LBlock blk;
  LOp cmp;
  cmp.opc = Opcode::kCmpgt;
  cmp.dst = 0;
  cmp.dst_is_breg = true;
  cmp.src1 = 1;
  cmp.src2_is_imm = true;
  blk.body.push_back(cmp);
  blk.term = Terminator::kBranch;
  blk.cond = 0;
  blk.target = 0;
  const BlockDdg g = build_ddg(blk, LatencyConfig{});
  EXPECT_EQ(edge_latency(g, 0, g.terminator_node()), 2);
}

TEST(Ddg, WarAllowsSameCycle) {
  LBlock blk;
  blk.body.push_back(def(0));
  blk.body.push_back(use2(1, 0, 0));  // reads v0
  blk.body.push_back(def(0));         // redefines v0
  blk.term = Terminator::kHalt;
  const BlockDdg g = build_ddg(blk, LatencyConfig{});
  EXPECT_EQ(edge_latency(g, 1, 2), 0);  // WAR: def may share the cycle
}

TEST(Ddg, WawOrdersWritesByCompletion) {
  LBlock blk;
  blk.body.push_back(def(0, Opcode::kMpyl));  // lat 2
  blk.body.push_back(def(0, Opcode::kMovi));  // lat 1
  blk.term = Terminator::kHalt;
  const BlockDdg g = build_ddg(blk, LatencyConfig{});
  // Second write must land strictly later: 2 - 1 + 1 = 2.
  EXPECT_EQ(edge_latency(g, 0, 1), 2);
}

TEST(Ddg, MemoryEdgesWithinSpace) {
  LBlock blk;
  LOp st;
  st.opc = Opcode::kStw;
  st.src1 = 0;
  st.src2 = 1;
  st.mem_space = 0;
  LOp ld;
  ld.opc = Opcode::kLdw;
  ld.dst = 2;
  ld.src1 = 0;
  ld.mem_space = 0;
  blk.body.push_back(st);
  blk.body.push_back(ld);
  blk.body.push_back(st);
  blk.term = Terminator::kHalt;
  const BlockDdg g = build_ddg(blk, LatencyConfig{});
  EXPECT_EQ(edge_latency(g, 0, 1), 1);  // store → load
  EXPECT_EQ(edge_latency(g, 0, 2), 1);  // store → store
  EXPECT_EQ(edge_latency(g, 1, 2), 0);  // load → store (WAR)
}

TEST(Ddg, DisjointSpacesIndependent) {
  LBlock blk;
  LOp st;
  st.opc = Opcode::kStw;
  st.src1 = 0;
  st.src2 = 1;
  st.mem_space = 1;
  LOp ld;
  ld.opc = Opcode::kLdw;
  ld.dst = 2;
  ld.src1 = 0;
  ld.mem_space = 2;
  blk.body.push_back(st);
  blk.body.push_back(ld);
  blk.term = Terminator::kHalt;
  const BlockDdg g = build_ddg(blk, LatencyConfig{});
  EXPECT_EQ(edge_latency(g, 0, 1), -1);  // no edge
}

TEST(Ddg, ReadOnlyLoadsUnordered) {
  LBlock blk;
  LOp st;
  st.opc = Opcode::kStw;
  st.src1 = 0;
  st.src2 = 1;
  st.mem_space = 0;
  LOp ld;
  ld.opc = Opcode::kLdw;
  ld.dst = 2;
  ld.src1 = 0;
  ld.mem_space = kMemSpaceReadOnly;
  blk.body.push_back(st);
  blk.body.push_back(ld);
  blk.term = Terminator::kHalt;
  const BlockDdg g = build_ddg(blk, LatencyConfig{});
  EXPECT_EQ(edge_latency(g, 0, 1), -1);
}

TEST(Ddg, PriorityIsCriticalPathHeight) {
  LBlock blk;
  blk.body.push_back(def(0, Opcode::kMpyl));   // feeds a chain
  blk.body.push_back(use2(1, 0, 0, Opcode::kMpyl));
  blk.body.push_back(use2(2, 1, 1));
  blk.body.push_back(def(3));                  // independent
  blk.term = Terminator::kHalt;
  const BlockDdg g = build_ddg(blk, LatencyConfig{});
  EXPECT_GT(g.priority[0], g.priority[3]);
  EXPECT_EQ(g.priority[0], 4);  // 2 (mul) + 2 (mul) + 0
  EXPECT_EQ(g.priority[3], 0);
}

TEST(Ddg, CopyActsAsUnitLatencyProducer) {
  LBlock blk;
  blk.body.push_back(def(0));
  LOp copy;
  copy.opc = Opcode::kSend;
  copy.is_copy = true;
  copy.src1 = 0;
  copy.dst = 1;
  copy.cluster = 0;
  copy.copy_dst_cluster = 1;
  blk.body.push_back(copy);
  blk.body.push_back(use2(2, 1, 1));
  blk.term = Terminator::kHalt;
  const BlockDdg g = build_ddg(blk, LatencyConfig{});
  EXPECT_EQ(edge_latency(g, 0, 1), 1);
  EXPECT_EQ(edge_latency(g, 1, 2), 1);
}

}  // namespace
}  // namespace vexsim::cc
