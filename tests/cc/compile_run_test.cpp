// End-to-end compiler correctness: compiled programs must compute the same
// architectural state on the cycle-accurate simulator as on the reference
// interpreter, for hand-written kernels and for random IR.
#include <gtest/gtest.h>

#include "cc/compiler.hpp"
#include "cc/irgen.hpp"
#include "cc/verifier.hpp"
#include "sim/reference.hpp"
#include "support/test_util.hpp"

namespace vexsim::cc {
namespace {

MachineConfig paper_cfg() {
  MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  cfg.branch_on_cluster0_only = false;
  cfg.icache.perfect = true;
  cfg.dcache.perfect = true;
  return cfg;
}

std::shared_ptr<const Program> finalize_gen(const GeneratedIr& gen,
                                            const MachineConfig& cfg) {
  Program prog = compile(gen.fn, cfg);
  prog.add_data_words(gen.data_base, gen.init_words);
  prog.finalize();
  return std::make_shared<const Program>(std::move(prog));
}

TEST(CompileRun, DotProductMatchesExpectedValue) {
  Builder b("dot");
  const VReg base = b.movi(0x2000);
  VReg acc = b.movi(0);
  for (int i = 0; i < 4; ++i) {
    const VReg x = b.load(Opcode::kLdw, base, i * 4, kMemSpaceReadOnly);
    const VReg y = b.load(Opcode::kLdw, base, 16 + i * 4, kMemSpaceReadOnly);
    acc = b.alu(Opcode::kAdd, acc, b.mpy(x, y));
  }
  b.store(Opcode::kStw, base, 64, acc);
  b.halt();
  const MachineConfig cfg = paper_cfg();
  Program prog = compile(std::move(b).take(), cfg);
  prog.add_data_words(0x2000, {1, 2, 3, 4, 10, 20, 30, 40});
  prog.finalize();
  auto shared = std::make_shared<const Program>(std::move(prog));

  Simulator sim(cfg);
  ThreadContext ctx(0, shared);
  sim.attach(0, &ctx);
  ASSERT_TRUE(sim.run_to_halt(10'000));
  EXPECT_EQ(ctx.mem.peek_u32(0x2000 + 64), 1u * 10 + 2 * 20 + 3 * 30 + 4 * 40);
}

TEST(CompileRun, LoopKernelMatchesReference) {
  Builder b("loop");
  const VReg base = b.movi(0x2000);
  const VReg n = b.fresh_global();
  const VReg sum = b.fresh_global();
  b.assign_i(n, 16);
  b.assign_i(sum, 0);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);
  const VReg idx = b.alui(Opcode::kShl, n, 2);
  const VReg addr = b.alu(Opcode::kAdd, base, idx);
  const VReg x = b.load(Opcode::kLdw, addr, -4, kMemSpaceReadOnly);
  b.assign_alu(sum, Opcode::kAdd, sum, b.mpyi(x, 3));
  b.assign_alui(n, Opcode::kAdd, n, -1);
  const VReg more = b.cmpi_b(Opcode::kCmpgt, n, 0);
  b.branch(more, body);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.store(Opcode::kStw, base, 256, sum);
  b.halt();

  const MachineConfig cfg = paper_cfg();
  Program prog = compile(std::move(b).take(), cfg);
  std::vector<std::uint32_t> words;
  for (std::uint32_t i = 0; i < 16; ++i) words.push_back(i * i + 1);
  prog.add_data_words(0x2000, words);
  prog.finalize();
  auto shared = std::make_shared<const Program>(std::move(prog));

  Simulator sim(cfg);
  ThreadContext sim_ctx(0, shared);
  sim.attach(0, &sim_ctx);
  ASSERT_TRUE(sim.run_to_halt(100'000));

  ReferenceInterpreter ref(cfg.clusters);
  ThreadContext ref_ctx(0, shared);
  const RefResult rr = ref.run(ref_ctx, 1'000'000);
  ASSERT_TRUE(rr.halted);

  EXPECT_EQ(sim_ctx.arch_fingerprint(cfg.clusters),
            ref_ctx.arch_fingerprint(cfg.clusters));
  std::uint32_t expect = 0;
  for (std::uint32_t i = 0; i < 16; ++i) expect += 3 * (i * i + 1);
  EXPECT_EQ(sim_ctx.mem.peek_u32(0x2000 + 256), expect);
}

TEST(CompileRun, RandomIrSimulatorMatchesReference) {
  const MachineConfig cfg = paper_cfg();
  for (std::uint64_t seed = 100; seed < 116; ++seed) {
    const GeneratedIr gen = generate_ir(seed);
    const auto prog = finalize_gen(gen, cfg);

    Simulator sim(cfg);
    ThreadContext sim_ctx(0, prog);
    sim.attach(0, &sim_ctx);
    ASSERT_TRUE(sim.run_to_halt(2'000'000)) << "seed " << seed;
    ASSERT_EQ(sim_ctx.state, RunState::kHalted) << "seed " << seed;

    ReferenceInterpreter ref(cfg.clusters);
    ThreadContext ref_ctx(0, prog);
    const RefResult rr = ref.run(ref_ctx, 10'000'000);
    ASSERT_TRUE(rr.halted) << "seed " << seed;

    EXPECT_EQ(sim_ctx.arch_fingerprint(cfg.clusters),
              ref_ctx.arch_fingerprint(cfg.clusters))
        << "seed " << seed;
    EXPECT_EQ(sim_ctx.total_instructions, rr.instructions) << "seed " << seed;
  }
}

TEST(CompileRun, ClusterHintsProduceSameResults) {
  const MachineConfig cfg = paper_cfg();
  IrGenParams hinted;
  hinted.cluster_hints = true;
  for (std::uint64_t seed = 300; seed < 306; ++seed) {
    const GeneratedIr gen = generate_ir(seed, hinted);
    const auto prog = finalize_gen(gen, cfg);
    Simulator sim(cfg);
    ThreadContext sim_ctx(0, prog);
    sim.attach(0, &sim_ctx);
    ASSERT_TRUE(sim.run_to_halt(2'000'000)) << "seed " << seed;
    ReferenceInterpreter ref(cfg.clusters);
    ThreadContext ref_ctx(0, prog);
    ASSERT_TRUE(ref.run(ref_ctx, 10'000'000).halted) << "seed " << seed;
    EXPECT_EQ(sim_ctx.arch_fingerprint(cfg.clusters),
              ref_ctx.arch_fingerprint(cfg.clusters))
        << "seed " << seed;
  }
}

TEST(CompileRun, CompileStatsPopulated) {
  const GeneratedIr gen = generate_ir(55);
  CompileStats stats;
  const MachineConfig cfg = paper_cfg();
  const Program prog = compile(gen.fn, cfg, &stats);
  EXPECT_GT(stats.instructions, 0);
  EXPECT_GT(stats.operations, 0);
  EXPECT_EQ(stats.instructions, static_cast<int>(prog.code.size()));
  EXPECT_GT(stats.ops_per_instruction(), 0.5);
}

TEST(CompileRun, TwoClusterMachineWorksToo) {
  MachineConfig cfg = paper_cfg();
  cfg.clusters = 2;
  for (std::uint64_t seed = 400; seed < 406; ++seed) {
    const GeneratedIr gen = generate_ir(seed);
    const auto prog = finalize_gen(gen, cfg);
    Simulator sim(cfg);
    ThreadContext sim_ctx(0, prog);
    sim.attach(0, &sim_ctx);
    ASSERT_TRUE(sim.run_to_halt(2'000'000)) << "seed " << seed;
    ReferenceInterpreter ref(cfg.clusters);
    ThreadContext ref_ctx(0, prog);
    ASSERT_TRUE(ref.run(ref_ctx, 10'000'000).halted);
    EXPECT_EQ(sim_ctx.arch_fingerprint(cfg.clusters),
              ref_ctx.arch_fingerprint(cfg.clusters))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace vexsim::cc
