// The explicit pass pipeline: pass selection per CompilerOptions, partial
// pipelines exposing intermediate artifacts, and stats accounting.
#include <gtest/gtest.h>

#include "cc/pipeline.hpp"
#include "support/test_util.hpp"

namespace vexsim::cc {
namespace {

MachineConfig cfg4() {
  MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  cfg.branch_on_cluster0_only = false;
  return cfg;
}

IrFunction tiny_fn() {
  Builder b("tiny");
  const VReg base = b.movi(0x2000);
  const VReg x = b.load(Opcode::kLdw, base, 0, kMemSpaceReadOnly);
  const VReg y = b.mpyi(x, 5);
  b.store(Opcode::kStw, base, 64, y);
  b.halt();
  return std::move(b).take();
}

TEST(Pipeline, StandardPassOrder) {
  const std::vector<std::string> plain =
      Pipeline::standard(CompilerOptions::parse("greedy")).pass_names();
  const std::vector<std::string> expect_plain = {
      "ir-verify", "cluster-assign", "list-sched",
      "regalloc",  "emit",           "program-verify"};
  EXPECT_EQ(plain, expect_plain);

  const std::vector<std::string> swp =
      Pipeline::standard(CompilerOptions::parse("cost_swp")).pass_names();
  const std::vector<std::string> expect_swp = {
      "ir-verify", "cluster-assign", "modulo-sched", "list-sched",
      "regalloc",  "emit",           "program-verify"};
  EXPECT_EQ(swp, expect_swp);
}

TEST(Pipeline, PartialPipelineExposesArtifacts) {
  const MachineConfig cfg = cfg4();
  PassContext ctx(cfg, CompilerOptions{}, tiny_fn());
  Pipeline partial;
  partial.add(make_ir_verify_pass())
      .add(make_cluster_assign_pass())
      .add(make_list_sched_pass());
  partial.run_passes(ctx);
  ASSERT_FALSE(ctx.lfn.blocks.empty());
  ASSERT_EQ(ctx.sched.blocks.size(), ctx.lfn.blocks.size());
  EXPECT_TRUE(ctx.prog.code.empty());  // emit has not run

  Pipeline rest;
  rest.add(make_regalloc_pass()).add(make_emit_pass()).add(
      make_program_verify_pass());
  rest.run_passes(ctx);
  EXPECT_FALSE(ctx.prog.code.empty());
  EXPECT_TRUE(ctx.prog.finalized());
}

TEST(Pipeline, RunMatchesCompileEntryPoint) {
  const MachineConfig cfg = cfg4();
  const CompilerOptions opt = CompilerOptions::parse("cost");
  CompileStats s1, s2;
  const Program a =
      Pipeline::standard(opt).run(tiny_fn(), cfg, opt, &s1);
  const Program b = compile(tiny_fn(), cfg, opt, &s2);
  ASSERT_EQ(a.code.size(), b.code.size());
  EXPECT_EQ(s1.instructions, s2.instructions);
  EXPECT_EQ(s1.operations, s2.operations);
}

TEST(Pipeline, DefaultOptionsReproduceLegacyCompile) {
  // The two-argument compile() is the seed interface; it must be the
  // default pipeline exactly.
  const MachineConfig cfg = cfg4();
  CompileStats s1, s2;
  const Program a = compile(tiny_fn(), cfg, &s1);
  const Program b = compile(tiny_fn(), cfg, CompilerOptions{}, &s2);
  ASSERT_EQ(a.code.size(), b.code.size());
  for (std::size_t i = 0; i < a.code.size(); ++i)
    for (int c = 0; c < cfg.clusters; ++c)
      EXPECT_EQ(a.code[i].bundle(c).size(), b.code[i].bundle(c).size());
  EXPECT_EQ(s1.instructions, s2.instructions);
}

TEST(Pipeline, StatsAccounting) {
  const MachineConfig cfg = cfg4();
  CompileStats stats;
  const Program prog = compile(tiny_fn(), cfg, CompilerOptions{}, &stats);
  EXPECT_EQ(stats.instructions, static_cast<int>(prog.code.size()));
  int ops = 0;
  for (const VliwInstruction& insn : prog.code) ops += insn.op_count();
  EXPECT_EQ(stats.operations, ops);
  EXPECT_EQ(stats.swp_loops, 0);
}

}  // namespace
}  // namespace vexsim::cc
