// Iterative-modulo-scheduling correctness: pipelined loops must produce a
// valid kernel (metadata, verifier) and the exact architectural results of
// the unpipelined compile — against the reference interpreter, the
// cycle-accurate simulator, and across pipeline variants (memory state).
#include <gtest/gtest.h>

#include "cc/compiler.hpp"
#include "cc/irgen.hpp"
#include "cc/verifier.hpp"
#include "sim/reference.hpp"
#include "support/test_util.hpp"
#include "wl_synth/generate.hpp"

namespace vexsim::cc {
namespace {

MachineConfig test_cfg() {
  MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  cfg.branch_on_cluster0_only = false;
  cfg.icache.perfect = true;
  cfg.dcache.perfect = true;
  return cfg;
}

// A multiply-accumulate reduction loop with enough trips to enter the
// pipelined kernel.
IrFunction reduction_loop(int trips) {
  Builder b("reduce");
  const VReg base = b.movi(0x2000);
  const VReg n = b.fresh_global();
  const VReg sum = b.fresh_global();
  b.assign_i(n, trips);
  b.assign_i(sum, 0);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);
  const VReg idx = b.alui(Opcode::kShl, n, 2);
  const VReg addr = b.alu(Opcode::kAdd, base, idx);
  const VReg x = b.load(Opcode::kLdw, addr, -4, kMemSpaceReadOnly);
  b.assign_alu(sum, Opcode::kAdd, sum, b.mpyi(x, 3));
  b.assign_alui(n, Opcode::kAdd, n, -1);
  const VReg more = b.cmpi_b(Opcode::kCmpgt, n, 0);
  b.branch(more, body);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.store(Opcode::kStw, base, 256, sum);
  b.halt();
  return std::move(b).take();
}

std::vector<std::uint32_t> reduction_data(int trips) {
  std::vector<std::uint32_t> words;
  for (int i = 0; i < trips; ++i)
    words.push_back(static_cast<std::uint32_t>(i * i + 1));
  return words;
}

std::uint32_t reduction_expect(int trips) {
  std::uint32_t expect = 0;
  for (int i = 0; i < trips; ++i)
    expect += 3u * static_cast<std::uint32_t>(i * i + 1);
  return expect;
}

// Compiles, runs on the simulator, cross-checks against the reference
// interpreter, and returns the final memory fingerprint.
std::uint64_t run_and_check(const Program& prog, const MachineConfig& cfg,
                            const char* what) {
  auto shared = std::make_shared<const Program>(prog);
  Simulator sim(cfg);
  ThreadContext sim_ctx(0, shared);
  sim.attach(0, &sim_ctx);
  EXPECT_TRUE(sim.run_to_halt(4'000'000)) << what;
  EXPECT_EQ(sim_ctx.state, RunState::kHalted) << what;

  ReferenceInterpreter ref(cfg.clusters);
  ThreadContext ref_ctx(0, shared);
  const RefResult rr = ref.run(ref_ctx, 20'000'000);
  EXPECT_TRUE(rr.halted) << what;
  EXPECT_EQ(sim_ctx.arch_fingerprint(cfg.clusters),
            ref_ctx.arch_fingerprint(cfg.clusters))
      << what;
  return sim_ctx.mem.fingerprint();
}

TEST(ModuloSched, ReductionLoopPipelines) {
  const MachineConfig cfg = test_cfg();
  const int trips = 64;
  CompilerOptions swp = CompilerOptions::parse("greedy_swp");
  CompileStats stats;
  Program prog = compile(reduction_loop(trips), cfg, swp, &stats);
  EXPECT_EQ(stats.swp_candidates, 1);
  ASSERT_EQ(stats.swp_loops, 1) << "fallbacks: " << stats.swp_fallbacks;
  ASSERT_EQ(prog.kernels.size(), 1u);
  const SoftwarePipelinedLoop& k = prog.kernels[0];
  EXPECT_GE(k.stages, 2);
  EXPECT_GE(k.ii, cfg.lat.cmp_to_branch + 1);
  verify_or_throw(prog, cfg);

  prog.add_data_words(0x2000, reduction_data(trips));
  prog.finalize();
  auto shared = std::make_shared<const Program>(std::move(prog));
  Simulator sim(cfg);
  ThreadContext ctx(0, shared);
  sim.attach(0, &ctx);
  ASSERT_TRUE(sim.run_to_halt(1'000'000));
  EXPECT_EQ(ctx.mem.peek_u32(0x2000 + 256), reduction_expect(trips));
}

TEST(ModuloSched, PipelinedKernelBeatsListScheduleDensity) {
  const MachineConfig cfg = test_cfg();
  CompileStats plain_stats, swp_stats;
  Program plain = compile(reduction_loop(64), cfg, CompilerOptions{},
                          &plain_stats);
  Program swp = compile(reduction_loop(64), cfg,
                        CompilerOptions::parse("greedy_swp"), &swp_stats);
  ASSERT_EQ(swp_stats.swp_loops, 1);
  // The kernel must iterate faster than the list-scheduled loop body.
  ASSERT_EQ(swp.kernels.size(), 1u);
  EXPECT_LT(swp.kernels[0].ii, plain.code.size());
}

TEST(ModuloSched, ShortTripCountsTakeTheGuardPath) {
  const MachineConfig cfg = test_cfg();
  for (int trips = 1; trips <= 6; ++trips) {
    CompileStats stats;
    Program prog = compile(reduction_loop(trips), cfg,
                           CompilerOptions::parse("greedy_swp"), &stats);
    ASSERT_EQ(stats.swp_loops, 1) << "trips " << trips;
    prog.add_data_words(0x2000, reduction_data(trips));
    prog.finalize();
    auto shared = std::make_shared<const Program>(std::move(prog));
    Simulator sim(cfg);
    ThreadContext ctx(0, shared);
    sim.attach(0, &ctx);
    ASSERT_TRUE(sim.run_to_halt(1'000'000)) << "trips " << trips;
    EXPECT_EQ(ctx.mem.peek_u32(0x2000 + 256), reduction_expect(trips))
        << "trips " << trips;
  }
}

TEST(ModuloSched, RandomIrAllVariantsAgree) {
  const MachineConfig cfg = test_cfg();
  for (std::uint64_t seed = 700; seed < 712; ++seed) {
    const GeneratedIr gen = generate_ir(seed);
    std::uint64_t mem_fp = 0;
    bool first = true;
    for (const char* variant :
         {"greedy", "cost", "greedy_swp", "cost_swp"}) {
      Program prog =
          compile(gen.fn, cfg, CompilerOptions::parse(variant), nullptr);
      verify_or_throw(prog, cfg);
      prog.add_data_words(gen.data_base, gen.init_words);
      prog.finalize();
      const std::uint64_t fp = run_and_check(
          prog, cfg, (std::string(variant) + "/" + std::to_string(seed))
                         .c_str());
      // Register files differ across assignments, but the stored results
      // must be identical for every pipeline variant.
      if (first) {
        mem_fp = fp;
        first = false;
      } else {
        EXPECT_EQ(fp, mem_fp) << variant << " seed " << seed;
      }
    }
  }
}

TEST(ModuloSched, SynthProgramsPipelineAndAgree) {
  const MachineConfig cfg = test_cfg();
  // The p-dial spec computes induction-derived work off the accumulator
  // recurrence and must pipeline; the dense high-ILP spec is
  // recurrence-bound (every chain is loop-carried) and legitimately stays
  // on the list-scheduler path — but both must stay architecturally exact
  // under every pipeline variant.
  for (const char* spec_name :
       {"synth:i0.9-m0.2-s7", "synth:i0.3-m0.2-p0.7-s1"}) {
    const wl_synth::SynthSpec spec = wl_synth::parse_spec(spec_name);
    CompileStats swp_stats;
    Program swp = wl_synth::generate(spec, cfg, 0.05,
                                     CompilerOptions::parse("cost_swp"),
                                     &swp_stats);
    EXPECT_EQ(swp_stats.swp_candidates, 1) << spec_name;
    EXPECT_EQ(swp_stats.swp_loops + swp_stats.swp_fallbacks, 1) << spec_name;
    Program plain = wl_synth::generate(spec, cfg, 0.05, CompilerOptions{});
    const std::uint64_t fp_swp = run_and_check(swp, cfg, spec_name);
    const std::uint64_t fp_plain = run_and_check(plain, cfg, spec_name);
    EXPECT_EQ(fp_swp, fp_plain) << spec_name;
  }
  CompileStats stats;
  Program prog = wl_synth::generate(
      wl_synth::parse_spec("synth:i0.3-m0.2-p0.7-s1"), cfg, 0.05,
      CompilerOptions::parse("cost_swp"), &stats);
  EXPECT_EQ(stats.swp_loops, 1);
  EXPECT_EQ(prog.kernels.size(), 1u);
}

TEST(ModuloSched, NonCandidateLoopsFallBack) {
  // A loop whose condition is not a counted compare (uses branch_if_false)
  // must stay on the list-scheduler path, correctly compiled.
  Builder b("noncand");
  const VReg n = b.fresh_global();
  b.assign_i(n, 10);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);
  b.assign_alui(n, Opcode::kAdd, n, -1);
  const VReg done = b.cmpi_b(Opcode::kCmple, n, 0);
  b.branch(done, body, /*if_false=*/true);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.store(Opcode::kStw, b.movi(0x2000), 0, n);
  b.halt();

  const MachineConfig cfg = test_cfg();
  CompileStats stats;
  Program prog = compile(std::move(b).take(), cfg,
                         CompilerOptions::parse("greedy_swp"), &stats);
  EXPECT_EQ(stats.swp_loops, 0);
  EXPECT_TRUE(prog.kernels.empty());
  (void)run_and_check(prog, cfg, "noncand");
}

TEST(ModuloSched, DecodedProgramKnowsRegions) {
  const MachineConfig cfg = test_cfg();
  Program prog = compile(reduction_loop(64), cfg,
                         CompilerOptions::parse("greedy_swp"), nullptr);
  ASSERT_EQ(prog.kernels.size(), 1u);
  const SoftwarePipelinedLoop& k = prog.kernels[0];
  const DecodedProgram& dec = *prog.decoded;
  EXPECT_EQ(dec.region_of(0), SwpRegion::kNone);
  EXPECT_EQ(dec.region_of(k.prologue_start), SwpRegion::kPrologue);
  EXPECT_EQ(dec.region_of(k.kernel_start), SwpRegion::kKernel);
  EXPECT_EQ(dec.region_of(k.kernel_start + k.ii), SwpRegion::kEpilogue);
  EXPECT_EQ(dec.region_of(k.epilogue_end), SwpRegion::kNone);
}

}  // namespace
}  // namespace vexsim::cc
