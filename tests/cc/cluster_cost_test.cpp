// Cost-model cluster assignment: legality on symmetric and asymmetric
// machines, capacity-proportional filling, and compile quality against the
// greedy baseline where the model is designed to win.
#include <gtest/gtest.h>

#include "cc/cluster_cost.hpp"
#include "cc/compiler.hpp"
#include "cc/irgen.hpp"
#include "cc/verifier.hpp"
#include "sim/reference.hpp"
#include "support/test_util.hpp"
#include "wl_synth/generate.hpp"

namespace vexsim::cc {
namespace {

MachineConfig asym_cfg() {
  MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  cfg.branch_on_cluster0_only = false;
  cfg.cluster_renaming = false;
  cfg.cluster_overrides = {ClusterResourceConfig::for_issue_width(8),
                           ClusterResourceConfig::for_issue_width(4),
                           ClusterResourceConfig::for_issue_width(2),
                           ClusterResourceConfig::for_issue_width(2)};
  cfg.validate();
  return cfg;
}

TEST(ClusterCost, HeightsFollowRawChains) {
  Builder b("h");
  const VReg x = b.movi(1);          // feeds a 3-op chain
  const VReg y = b.alui(Opcode::kAdd, x, 1);
  const VReg z = b.mpyi(y, 3);       // mul latency 2
  b.store(Opcode::kStw, b.movi(0x2000), 0, z);
  b.halt();
  const IrFunction fn = std::move(b).take();
  const std::vector<int> h = ir_block_heights(fn.blocks[0], LatencyConfig{});
  // The store defines nothing (height 0); each producer adds its own
  // latency on top of its highest reader.
  ASSERT_EQ(h.size(), 5u);
  EXPECT_GT(h[0], h[1]);
  EXPECT_GT(h[1], h[2]);
  EXPECT_EQ(h[2], 2);  // mul latency over the store's height of 0
  EXPECT_EQ(h[4], 0);  // the store itself
}

TEST(ClusterCost, RandomIrLegalOnAsymmetricMachine) {
  const MachineConfig cfg = asym_cfg();
  for (std::uint64_t seed = 900; seed < 910; ++seed) {
    const GeneratedIr gen = generate_ir(seed);
    const Program prog =
        compile(gen.fn, cfg, CompilerOptions::parse("cost"), nullptr);
    EXPECT_TRUE(verify_program(prog, cfg).empty()) << "seed " << seed;
  }
}

TEST(ClusterCost, BeatsGreedyDensityOnHighIlpSynth) {
  // The CI compile-quality gate in bench/abl_compiler.cpp enforces this
  // over the sweep; this is the unit-level version on one machine.
  const MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  int wins = 0, points = 0;
  for (const char* spec : {"synth:i0.8-m0.2-s1", "synth:i0.9-m0.2-s7",
                           "synth:i0.95-m0.1-s3"}) {
    CompileStats greedy, cost;
    (void)wl_synth::generate(wl_synth::parse_spec(spec), cfg, 0.1,
                             CompilerOptions::parse("greedy"), &greedy);
    (void)wl_synth::generate(wl_synth::parse_spec(spec), cfg, 0.1,
                             CompilerOptions::parse("cost"), &cost);
    ++points;
    EXPECT_GE(cost.ops_per_instruction(),
              greedy.ops_per_instruction() - 1e-9)
        << spec;
    if (cost.ops_per_instruction() > greedy.ops_per_instruction() + 1e-9)
      ++wins;
  }
  EXPECT_GT(wins, 0) << "cost model never improved density";
  (void)points;
}

TEST(ClusterCost, ShorterScheduleOnAsymmetricMachine) {
  // Greedy's flat load counter overloads the narrow clusters of the
  // 8+4+2+2 machine; the capacity-aware model must not be longer in
  // aggregate.
  const MachineConfig cfg = asym_cfg();
  int greedy_total = 0, cost_total = 0;
  for (const char* spec : {"synth:i0.8-m0.2-s1", "synth:i0.9-m0.2-s7",
                           "synth:i0.5-m0.2-b0.05-s1"}) {
    CompileStats greedy, cost;
    (void)wl_synth::generate(wl_synth::parse_spec(spec), cfg, 0.1,
                             CompilerOptions::parse("greedy"), &greedy);
    (void)wl_synth::generate(wl_synth::parse_spec(spec), cfg, 0.1,
                             CompilerOptions::parse("cost"), &cost);
    greedy_total += greedy.instructions;
    cost_total += cost.instructions;
  }
  EXPECT_LE(cost_total, greedy_total);
}

TEST(ClusterCost, ArchitecturallyExactOnAsymmetricMachine) {
  const MachineConfig cfg = asym_cfg();
  for (std::uint64_t seed = 920; seed < 926; ++seed) {
    const GeneratedIr gen = generate_ir(seed);
    Program prog =
        compile(gen.fn, cfg, CompilerOptions::parse("cost"), nullptr);
    prog.add_data_words(gen.data_base, gen.init_words);
    prog.finalize();
    auto shared = std::make_shared<const Program>(std::move(prog));
    Simulator sim(cfg);
    ThreadContext sim_ctx(0, shared);
    sim.attach(0, &sim_ctx);
    ASSERT_TRUE(sim.run_to_halt(4'000'000)) << seed;
    ReferenceInterpreter ref(cfg.clusters);
    ThreadContext ref_ctx(0, shared);
    ASSERT_TRUE(ref.run(ref_ctx, 20'000'000).halted) << seed;
    EXPECT_EQ(sim_ctx.arch_fingerprint(cfg.clusters),
              ref_ctx.arch_fingerprint(cfg.clusters))
        << seed;
  }
}

}  // namespace
}  // namespace vexsim::cc
