#include "cc/lint.hpp"

#include <gtest/gtest.h>

#include "cc/verifier.hpp"
#include "isa/config.hpp"
#include "util/check.hpp"
#include "vasm/assembler.hpp"

namespace vexsim::cc {
namespace {

MachineConfig cfg() { return MachineConfig::paper(1, Technique::smt()); }

bool has_check(const LintReport& report, const std::string& check) {
  for (const LintFinding& f : report.findings)
    if (f.check == check) return true;
  return false;
}

// --- stale-clone: the PR 5 miscompile class --------------------------------

// The clone-placement miscompile reconstructed as a program: a branch
// condition is cloned onto cluster 1 via send/recv, but the copy is taken
// *before* an interleaving redefinition of the source — the twin compares
// (and the slct clones consuming them) test different values, so the two
// clusters disagree about the predicate. Dynamically this only shows up as
// cross-variant divergence; the linter must prove it statically.
TEST(Lint, FlagsClonePlacementMiscompile) {
  const Program p = assemble(
      "c0 movi r5 = 1\n"
      "c0 movi r6 = 3 ; c1 movi r8 = 4\n"
      "c0 send ch0 = r5 ; c1 recv r7 = ch0\n"
      "c0 movi r5 = 2\n"  // interleaving redefinition after the copy
      "nop\n"
      "c0 cmplt b0 = r5, 100 ; c1 cmplt b0 = r7, 100\n"
      "nop\n"
      "c0 slct r3 = b0, r5, r6 ; c1 slct r4 = b0, r7, r8\n"
      "c0 stw 0x100[r0] = r3 ; c1 stw 0x104[r0] = r4\n"
      "c0 halt\n");
  const LintReport report = lint_program(p, cfg());
  ASSERT_TRUE(has_check(report, "stale-clone"));
  // Both the compare pair and the slct pair read the stale value.
  int stale = 0;
  for (const LintFinding& f : report.findings)
    if (f.check == "stale-clone") ++stale;
  EXPECT_EQ(stale, 2);
  // The findings anchor to the clone instructions and name the version
  // mismatch.
  for (const LintFinding& f : report.findings)
    if (f.check == "stale-clone") {
      EXPECT_TRUE(f.instr == 5 || f.instr == 7);
      EXPECT_NE(f.what.find("version"), std::string::npos);
    }
}

// The corrected shape — copy taken after the final redefinition — must be
// clean: the zero-finding gate is only meaningful if the checks stay
// silent on correct code.
TEST(Lint, CorrectClonePlacementIsClean) {
  const Program p = assemble(
      "c0 movi r5 = 2\n"
      "c0 movi r6 = 3 ; c1 movi r8 = 4\n"
      "c0 send ch0 = r5 ; c1 recv r7 = ch0\n"
      "nop\n"
      "c0 cmplt b0 = r5, 100 ; c1 cmplt b0 = r7, 100\n"
      "nop\n"
      "c0 slct r3 = b0, r5, r6 ; c1 slct r4 = b0, r7, r8\n"
      "c0 stw 0x100[r0] = r3 ; c1 stw 0x104[r0] = r4\n"
      "c0 halt\n");
  const LintReport report = lint_program(p, cfg());
  EXPECT_TRUE(report.findings.empty())
      << to_string(p, report.findings.front());
}

// A re-keyed predicate on the same cluster is a new generation, not a
// stale twin: cmp; use; cmp (same breg, new operands) must stay clean.
TEST(Lint, PredicateRegenerationIsNotAStaleClone) {
  const Program p = assemble(
      "c0 movi r5 = 1\n"
      "c0 cmplt b0 = r5, 100\n"
      "nop\n"
      "c0 slct r3 = b0, r5, r5\n"
      "c0 movi r5 = 2\n"
      "c0 cmplt b0 = r5, 100\n"  // same shape, later value: regeneration
      "nop\n"
      "c0 slct r4 = b0, r5, r5\n"
      "c0 stw 0x100[r0] = r3 ; c0 stw 0x104[r0] = r4\n"
      "c0 halt\n")
      ;
  EXPECT_FALSE(has_check(lint_program(p, cfg()), "stale-clone"));
}

// --- uninit-read -----------------------------------------------------------

TEST(Lint, FlagsReadBeforeAnyDefinition) {
  const Program p = assemble(
      "c0 add r1 = r2, r3\n"
      "c0 stw 0x100[r0] = r1\n"
      "c0 halt\n");
  const LintReport report = lint_program(p, cfg());
  int uninit = 0;
  for (const LintFinding& f : report.findings)
    if (f.check == "uninit-read") {
      EXPECT_EQ(f.instr, 0u);
      ++uninit;
    }
  EXPECT_EQ(uninit, 2);  // r2 and r3
}

TEST(Lint, FlagsUninitBregRead) {
  const Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 slct r2 = b3, r1, r1\n"  // b3 never written
      "c0 stw 0x100[r0] = r2\n"
      "c0 halt\n");
  const LintReport report = lint_program(p, cfg());
  bool found = false;
  for (const LintFinding& f : report.findings)
    if (f.check == "uninit-read" && f.what.find("c0:b3") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Lint, HardwiredZeroReadIsNotUninit) {
  const Program p = assemble(
      "c0 add r1 = r0, 5\n"
      "c0 stw 0x100[r0] = r1\n"
      "c0 halt\n");
  EXPECT_FALSE(has_check(lint_program(p, cfg()), "uninit-read"));
}

TEST(Lint, WriteOnOnlyOnePathIsStillUninit) {
  const Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 cmplt b0 = r1, 100\n"
      "c0 br b0, @4\n"
      "c0 movi r2 = 7\n"  // skipped when the branch is taken
      "c0 stw 0x100[r0] = r2\n"
      "c0 halt\n");
  const LintReport report = lint_program(p, cfg());
  bool found = false;
  for (const LintFinding& f : report.findings)
    if (f.check == "uninit-read" && f.instr == 4) found = true;
  EXPECT_TRUE(found);
}

// --- same-cycle-waw --------------------------------------------------------

TEST(Lint, FlagsSameCycleWaw) {
  Program p;
  p.name = "waw";
  VliwInstruction insn;
  insn.add(ops::alu(Opcode::kAdd, 0, 1, 2, 3));
  insn.add(ops::alu(Opcode::kSub, 0, 1, 4, 5));  // same c0:r1
  p.code.push_back(insn);
  VliwInstruction halt;
  halt.add(ops::halt(0));
  p.code.push_back(halt);
  p.finalize();
  const LintReport report = lint_program(p, cfg());
  ASSERT_TRUE(has_check(report, "same-cycle-waw"));
}

// --- dead-copy -------------------------------------------------------------

TEST(Lint, FlagsOrphanInterClusterCopy) {
  const Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 send ch0 = r1 ; c1 recv r2 = ch0\n"  // r2 never read on c1
      "c0 stw 0x100[r0] = r1\n"
      "c0 halt\n");
  const LintReport report = lint_program(p, cfg());
  bool found = false;
  for (const LintFinding& f : report.findings)
    if (f.check == "dead-copy" && f.instr == 1) found = true;
  EXPECT_TRUE(found);
}

TEST(Lint, ConsumedCopyIsClean) {
  const Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 send ch0 = r1 ; c1 recv r2 = ch0\n"
      "nop\n"
      "c1 stw 0x100[r0] = r2\n"
      "c0 halt\n");
  EXPECT_FALSE(has_check(lint_program(p, cfg()), "dead-copy"));
}

// --- dead-code and the rematerialization exemptions ------------------------

TEST(Lint, FlagsOrphanedComputation) {
  const Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 add r2 = r1, r1\n"  // result never read
      "c0 stw 0x100[r0] = r1\n"
      "c0 halt\n");
  const LintReport report = lint_program(p, cfg());
  bool found = false;
  for (const LintFinding& f : report.findings)
    if (f.check == "dead-code" && f.instr == 1) found = true;
  EXPECT_TRUE(found);
}

// The cluster assigner's intentional redundancy must not trip the gate:
// movi rematerialization and predicate-broadcast compare clones are exempt
// from dead-code even when a particular cluster never reads them.
TEST(Lint, RematerializationIsExemptFromDeadCode) {
  const Program p = assemble(
      "c0 movi r1 = 1 ; c1 movi r9 = 42\n"  // c1:r9 never read
      "c0 cmplt b0 = r1, 5 ; c1 cmplt b0 = r1, 5\n"  // c1:b0 never read
      "nop\n"
      "c0 slct r2 = b0, r1, r1\n"
      "c0 stw 0x100[r0] = r2\n"
      "c0 halt\n");
  const LintReport report = lint_program(p, cfg());
  EXPECT_FALSE(has_check(report, "dead-code"));
}

TEST(Lint, DeadLoadIsNotFlagged) {
  // Loads perturb the cache model, so a dead load is not removable and not
  // a finding.
  const Program p = assemble(
      "c0 ldw r1 = 0x200[r0]\n"
      "c0 halt\n");
  EXPECT_FALSE(has_check(lint_program(p, cfg()), "dead-code"));
}

// --- unreachable -----------------------------------------------------------

TEST(Lint, FlagsCodeAfterHalt) {
  const Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 halt\n"
      "c0 add r2 = r1, r1\n");
  const LintReport report = lint_program(p, cfg());
  bool found = false;
  for (const LintFinding& f : report.findings)
    if (f.check == "unreachable" && f.instr == 2) found = true;
  EXPECT_TRUE(found);
}

// --- kernel-clobber and SWP region handling --------------------------------

// A hand-built two-stage pipelined loop whose kernel computes a value that
// is never read before the next iteration overwrites it: a stage-overlap
// register conflict.
Program swp_with_dead_stage_value() {
  Program p = assemble(
      "c0 movi r2 = 1\n"                           // prologue (span 3 = ii)
      "c0 add r7 = r2, 0 ; c0 add r9 = r2, r2\n"   // r9 drains dead
      "c0 cmplt b0 = r7, 9\n"
      "c0 add r4 = r2, r2\n"       // kernel start (3): r4 dead in kernel
      "c0 add r7 = r7, 1\n"
      "c0 cmplt b0 = r7, 9 ; c0 br b0, @3\n"
      "c0 stw 0x100[r0] = r7\n"    // epilogue
      "c0 halt\n");
  SoftwarePipelinedLoop k;
  k.prologue_start = 0;
  k.kernel_start = 3;
  k.epilogue_end = 7;
  k.ii = 3;
  k.stages = 2;
  p.kernels.push_back(k);
  p.finalize();
  return p;
}

TEST(Lint, FlagsKernelStageOverlapClobber) {
  const Program p = swp_with_dead_stage_value();
  const LintReport report = lint_program(p, cfg());
  bool found = false;
  for (const LintFinding& f : report.findings)
    if (f.check == "kernel-clobber" &&
        f.what.find("c0:r4") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Lint, PrologueDrainValuesAreExempt) {
  const Program p = swp_with_dead_stage_value();
  const LintReport report = lint_program(p, cfg());
  // Instruction 1 (prologue) computes r9 which nothing reads; drain stages
  // legitimately compute partial-iteration results, so no dead-code
  // finding may anchor inside the prologue.
  for (const LintFinding& f : report.findings)
    EXPECT_NE(f.check, "dead-code") << to_string(p, f);
}

// --- error paths: lint and verifier on malformed programs ------------------

TEST(Lint, MalformedKernelSpanDoesNotCrashLint) {
  Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 stw 0x100[r0] = r1\n"
      "c0 halt\n");
  SoftwarePipelinedLoop k;
  k.prologue_start = 2;
  k.kernel_start = 1;  // kernel before prologue, ii past the end
  k.epilogue_end = 3;
  k.ii = 40;
  k.stages = 3;
  p.kernels.push_back(k);  // deliberately not re-finalized
  const auto issues = verify_program(p, cfg());
  bool reported = false;
  for (const VerifyIssue& issue : issues) {
    if (issue.what.find("malformed software-pipeline span") !=
        std::string::npos) {
      EXPECT_EQ(issue.instr, 1u);  // anchors to the kernel start
      reported = true;
    }
  }
  EXPECT_TRUE(reported);
  EXPECT_NO_FATAL_FAILURE((void)lint_program(p, cfg()));
}

TEST(Lint, KernelSpanPastEndOfCodeIsRejectedAtFinalize) {
  Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 halt\n");
  SoftwarePipelinedLoop k;
  k.prologue_start = 0;
  k.kernel_start = 1;
  k.epilogue_end = 99;
  k.ii = 1;
  k.stages = 2;
  p.kernels.push_back(k);
  EXPECT_THROW(p.finalize(), CheckError);
}

TEST(Lint, OutOfRangeBranchTargetDoesNotCrashLint) {
  Program p;
  p.name = "bad";
  VliwInstruction insn;
  insn.add(ops::jump(0, 12345));
  p.code.push_back(insn);
  p.finalize();
  const auto issues = verify_program(p, cfg());
  bool reported = false;
  for (const VerifyIssue& issue : issues)
    if (issue.what.find("branch target out of range") != std::string::npos) {
      EXPECT_EQ(issue.instr, 0u);
      reported = true;
    }
  EXPECT_TRUE(reported);
  EXPECT_NO_FATAL_FAILURE((void)lint_program(p, cfg()));
}

TEST(Lint, UnpairedSendDoesNotCrashLint) {
  Program p;
  p.name = "bad";
  VliwInstruction insn;
  insn.add(ops::send(0, 1, 3));
  p.code.push_back(insn);
  VliwInstruction halt;
  halt.add(ops::halt(0));
  p.code.push_back(halt);
  p.finalize();
  const auto issues = verify_program(p, cfg());
  bool reported = false;
  for (const VerifyIssue& issue : issues)
    if (issue.what.find("unpaired send/recv on channel 3") !=
        std::string::npos) {
      EXPECT_EQ(issue.instr, 0u);
      reported = true;
    }
  EXPECT_TRUE(reported);
  EXPECT_NO_FATAL_FAILURE((void)lint_program(p, cfg()));
}

// --- lint_or_throw aggregation ---------------------------------------------

TEST(Lint, LintOrThrowAggregatesEveryFinding) {
  const Program p = assemble(
      "c0 add r1 = r2, r3\n"  // two uninit reads
      "c0 halt\n"
      "c0 movi r4 = 1\n");  // unreachable
  try {
    lint_or_throw(p, cfg());
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("uninit-read"), std::string::npos);
    EXPECT_NE(what.find("unreachable"), std::string::npos);
    EXPECT_NE(what.find("[0]"), std::string::npos);
    EXPECT_NE(what.find("[2]"), std::string::npos);
  }
}

TEST(Lint, CleanProgramDoesNotThrow) {
  const Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 stw 0x100[r0] = r1\n"
      "c0 halt\n");
  EXPECT_NO_THROW(lint_or_throw(p, cfg()));
}

// --- lint_lfunction: structural mid-IR checks ------------------------------

LFunction tiny_lfn() {
  LFunction lfn;
  lfn.name = "lfn";
  lfn.next_vreg = 2;
  lfn.info.resize(2);
  LBlock block;
  LOp op;
  op.opc = Opcode::kAdd;
  op.dst = 1;
  op.src1 = 0;
  op.src2 = 0;
  op.cluster = 0;
  block.body.push_back(op);
  block.term = Terminator::kHalt;
  lfn.blocks.push_back(block);
  return lfn;
}

TEST(LintLFunction, CleanFunctionHasNoFindings) {
  EXPECT_TRUE(lint_lfunction(tiny_lfn(), cfg()).empty());
}

TEST(LintLFunction, FlagsNonexistentCluster) {
  LFunction lfn = tiny_lfn();
  lfn.blocks[0].body[0].cluster = 7;  // 4-cluster machine
  const auto findings = lint_lfunction(lfn, cfg());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].what.find("nonexistent cluster 7"),
            std::string::npos);
}

TEST(LintLFunction, FlagsSelfCopyAndBadVreg) {
  LFunction lfn = tiny_lfn();
  LOp copy;
  copy.is_copy = true;
  copy.cluster = 1;
  copy.copy_dst_cluster = 1;  // self-copy
  copy.src1 = 0;
  copy.dst = 99;  // out of range
  lfn.blocks[0].body.push_back(copy);
  const auto findings = lint_lfunction(lfn, cfg());
  bool self_copy = false;
  bool bad_vreg = false;
  for (const LintFinding& f : findings) {
    self_copy |= f.what.find("self-copy") != std::string::npos;
    bad_vreg |= f.what.find("out-of-range vreg") != std::string::npos;
  }
  EXPECT_TRUE(self_copy);
  EXPECT_TRUE(bad_vreg);
}

TEST(LintLFunction, FlagsTerminatorTargetOutOfRange) {
  LFunction lfn = tiny_lfn();
  lfn.blocks[0].term = Terminator::kGoto;
  lfn.blocks[0].target = 5;
  const auto findings = lint_lfunction(lfn, cfg());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].what.find("nonexistent block 5"), std::string::npos);
}

}  // namespace
}  // namespace vexsim::cc
