#include "cc/irgen.hpp"

#include <gtest/gtest.h>

#include "cc/compiler.hpp"
#include "cc/verifier.hpp"

namespace vexsim::cc {
namespace {

TEST(IrGen, DeterministicForSeed) {
  const GeneratedIr a = generate_ir(42);
  const GeneratedIr b = generate_ir(42);
  ASSERT_EQ(a.fn.blocks.size(), b.fn.blocks.size());
  EXPECT_EQ(a.fn.next_vreg, b.fn.next_vreg);
  EXPECT_EQ(a.init_words, b.init_words);
  for (std::size_t i = 0; i < a.fn.blocks.size(); ++i)
    EXPECT_EQ(a.fn.blocks[i].body.size(), b.fn.blocks[i].body.size());
}

TEST(IrGen, DifferentSeedsDiffer) {
  const GeneratedIr a = generate_ir(1);
  const GeneratedIr b = generate_ir(2);
  EXPECT_NE(a.init_words, b.init_words);
}

TEST(IrGen, ValidatesAndCompiles) {
  const MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  for (std::uint64_t seed : {7u, 77u, 777u}) {
    const GeneratedIr gen = generate_ir(seed);
    EXPECT_NO_THROW(gen.fn.validate()) << seed;
    const Program prog = compile(gen.fn, cfg);
    EXPECT_TRUE(verify_program(prog, cfg).empty()) << seed;
  }
}

TEST(IrGen, ParameterKnobsChangeShape) {
  IrGenParams small;
  small.blocks = 1;
  small.ops_per_block = 5;
  IrGenParams big;
  big.blocks = 5;
  big.ops_per_block = 40;
  const GeneratedIr a = generate_ir(9, small);
  const GeneratedIr b = generate_ir(9, big);
  EXPECT_LT(a.fn.blocks.size(), b.fn.blocks.size());
  EXPECT_LT(a.fn.next_vreg, b.fn.next_vreg);
}

TEST(IrGen, NoMemoryModeHasNoMemOps) {
  IrGenParams p;
  p.use_memory = false;
  const GeneratedIr gen = generate_ir(5, p);
  int mem_ops = 0;
  for (const IrBlock& blk : gen.fn.blocks)
    for (const IrOp& op : blk.body)
      if (is_mem(op.opc) && is_load(op.opc)) ++mem_ops;
  EXPECT_EQ(mem_ops, 0);
}

TEST(IrGen, EndsWithHalt) {
  const GeneratedIr gen = generate_ir(3);
  EXPECT_EQ(gen.fn.blocks.back().term, Terminator::kHalt);
}

}  // namespace
}  // namespace vexsim::cc
