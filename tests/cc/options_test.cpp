// CompilerOptions parsing and naming.
#include <gtest/gtest.h>

#include "cc/options.hpp"
#include "util/check.hpp"

namespace vexsim::cc {
namespace {

TEST(CompilerOptions, DefaultIsSeedPipeline) {
  const CompilerOptions opt;
  EXPECT_EQ(opt.assign, AssignStrategy::kGreedy);
  EXPECT_FALSE(opt.modulo_schedule);
  EXPECT_EQ(opt.name(), "greedy");
}

TEST(CompilerOptions, NamesRoundTrip) {
  for (const char* name : {"greedy", "cost", "cost_swp", "greedy_swp"}) {
    const CompilerOptions opt = CompilerOptions::parse(name);
    EXPECT_EQ(opt.name(), name);
    EXPECT_EQ(CompilerOptions::parse(opt.name()), opt);
  }
}

TEST(CompilerOptions, PipeAliases) {
  EXPECT_EQ(CompilerOptions::parse("pipe0").name(), "greedy");
  EXPECT_EQ(CompilerOptions::parse("pipe1").name(), "cost");
  EXPECT_EQ(CompilerOptions::parse("pipe2").name(), "cost_swp");
  EXPECT_EQ(CompilerOptions::parse("pipe3").name(), "greedy_swp");
}

TEST(CompilerOptions, VariantFlagsMatchNames) {
  EXPECT_EQ(CompilerOptions::parse("cost").assign, AssignStrategy::kCostModel);
  EXPECT_FALSE(CompilerOptions::parse("cost").modulo_schedule);
  EXPECT_TRUE(CompilerOptions::parse("cost_swp").modulo_schedule);
  EXPECT_EQ(CompilerOptions::parse("greedy_swp").assign,
            AssignStrategy::kGreedy);
  EXPECT_TRUE(CompilerOptions::parse("greedy_swp").modulo_schedule);
}

TEST(CompilerOptions, UnknownNameThrowsWithValidNames) {
  try {
    (void)CompilerOptions::parse("fastest");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("greedy"), std::string::npos);
    EXPECT_NE(what.find("cost_swp"), std::string::npos);
  }
}

}  // namespace
}  // namespace vexsim::cc
