#include "cc/ir.hpp"

#include <gtest/gtest.h>

#include "cc/cluster_assign.hpp"
#include "util/check.hpp"

namespace vexsim::cc {
namespace {

TEST(Ir, BuilderProducesValidFunction) {
  Builder b("f");
  const VReg x = b.movi(5);
  const VReg y = b.alui(Opcode::kAdd, x, 1);
  b.store(Opcode::kStw, b.movi(0x200), 0, y);
  b.halt();
  const IrFunction fn = std::move(b).take();
  EXPECT_EQ(fn.name, "f");
  EXPECT_EQ(fn.blocks.size(), 1u);
  EXPECT_EQ(fn.blocks[0].body.size(), 4u);
  EXPECT_EQ(fn.blocks[0].term, Terminator::kHalt);
}

TEST(Ir, FallthroughOutOfFunctionRejected) {
  Builder b("f");
  b.movi(1);
  // No halt: last block falls through into nothing.
  EXPECT_THROW(std::move(b).take(), CheckError);
}

TEST(Ir, BranchNeedsFallthroughSuccessor) {
  Builder b("f");
  const VReg c = b.cmpi_b(Opcode::kCmpgt, b.movi(1), 0);
  b.branch(c, 0);
  // Branch in the last block: invalid (no fallthrough block).
  EXPECT_THROW(std::move(b).take(), CheckError);
}

TEST(Ir, LoopShapeValidates) {
  Builder b("f");
  const VReg n = b.fresh_global();
  b.assign_i(n, 3);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);
  b.assign_alui(n, Opcode::kAdd, n, -1);
  const VReg more = b.cmpi_b(Opcode::kCmpgt, n, 0);
  b.branch(more, body);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();
  EXPECT_NO_THROW(std::move(b).take());
}

TEST(Ir, AnalyzeClassifiesLocalsAndGlobals) {
  Builder b("f");
  const VReg g = b.fresh_global();
  b.assign_i(g, 1);                      // def in block 0
  const VReg local = b.movi(5);          // def + use in block 0
  b.store(Opcode::kStw, b.movi(0x200), 0, local);
  const int second = b.new_block();
  b.jump(second);
  b.switch_to(second);
  b.store(Opcode::kStw, b.movi(0x300), 0, g);  // g used in block 1
  b.halt();
  const IrFunction fn = std::move(b).take();
  const auto info = analyze_vregs(fn);
  EXPECT_TRUE(info[static_cast<std::size_t>(g)].global);
  EXPECT_FALSE(info[static_cast<std::size_t>(local)].global);
}

TEST(Ir, MultiDefIsGlobal) {
  Builder b("f");
  const VReg v = b.fresh_global();
  b.assign_i(v, 1);
  b.assign_i(v, 2);
  b.halt();
  const IrFunction fn = std::move(b).take();
  EXPECT_TRUE(analyze_vregs(fn)[static_cast<std::size_t>(v)].global);
}

TEST(Ir, EscapingBregRejected) {
  Builder b("f");
  const VReg p = b.cmpi_b(Opcode::kCmpgt, b.movi(1), 0);
  const int second = b.new_block();
  b.jump(second);
  b.switch_to(second);
  b.slct(p, b.movi(1), b.movi(2));  // breg used outside defining block
  b.halt();
  const IrFunction fn = std::move(b).take();
  EXPECT_THROW(analyze_vregs(fn), CheckError);
}

TEST(Ir, ControlFlowOpsNotWritableInIr) {
  Builder b("f");
  b.halt();
  IrFunction fn = std::move(b).take();
  IrOp bad;
  bad.opc = Opcode::kSend;
  fn.blocks[0].body.push_back(bad);
  EXPECT_THROW(fn.validate(), CheckError);
}

}  // namespace
}  // namespace vexsim::cc
