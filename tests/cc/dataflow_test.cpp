#include "cc/dataflow.hpp"

#include <gtest/gtest.h>

#include "isa/config.hpp"
#include "vasm/assembler.hpp"

namespace vexsim::cc {
namespace {

// --- Location index --------------------------------------------------------

TEST(Locations, DenseIndexRoundTrips) {
  const int g = gpr_loc(2, 17);
  EXPECT_FALSE(loc_is_breg(g));
  EXPECT_EQ(loc_cluster(g), 2);
  EXPECT_EQ(loc_reg(g), 17);
  EXPECT_EQ(loc_name(g), "c2:r17");

  const int b = breg_loc(3, 5);
  EXPECT_TRUE(loc_is_breg(b));
  EXPECT_EQ(loc_cluster(b), 3);
  EXPECT_EQ(loc_reg(b), 5);
  EXPECT_EQ(loc_name(b), "c3:b5");
}

TEST(Locations, SameRegisterOnDifferentClustersIsDistinct) {
  EXPECT_NE(gpr_loc(0, 5), gpr_loc(1, 5));
  EXPECT_NE(breg_loc(0, 0), breg_loc(1, 0));
  EXPECT_NE(gpr_loc(0, kNumGprs - 1), breg_loc(0, 0));
}

TEST(LocSet, SetAlgebra) {
  LocSet a;
  a.insert(gpr_loc(0, 1));
  a.insert(breg_loc(7, 7));
  EXPECT_TRUE(a.contains(gpr_loc(0, 1)));
  EXPECT_TRUE(a.contains(breg_loc(7, 7)));
  EXPECT_EQ(a.count(), 2);

  LocSet b;
  b.insert(gpr_loc(0, 1));
  EXPECT_FALSE(a.insert_all(b));  // subset: no change
  b.insert(gpr_loc(4, 40));
  EXPECT_TRUE(a.insert_all(b));
  EXPECT_EQ(a.count(), 3);

  a.subtract(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_TRUE(a.contains(breg_loc(7, 7)));

  a.intersect(b);
  EXPECT_TRUE(a.empty());
}

TEST(OperandWalkers, ReadsSkipHardwiredZeroAndImmediates) {
  const Program p = assemble(
      "c0 add r1 = r0, r2\n"   // r0 read skipped
      "c0 movi r3 = 7\n"       // no reads
      "c0 add r4 = r3, 5\n");  // immediate src2 skipped
  int reads = 0;
  p.code[0].for_each_op([&](const Operation& op) {
    for_each_read(op, [&](int loc) {
      EXPECT_EQ(loc, gpr_loc(0, 2));
      ++reads;
    });
  });
  EXPECT_EQ(reads, 1);
  p.code[2].for_each_op([&](const Operation& op) {
    for_each_read(op, [&](int loc) {
      EXPECT_EQ(loc, gpr_loc(0, 3));
      ++reads;
    });
  });
  EXPECT_EQ(reads, 2);
}

TEST(OperandWalkers, StoresReadBothOperandsAndWriteNothing) {
  const Program p = assemble("c0 stw 4[r2] = r3\n");
  int reads = 0;
  int writes = 0;
  p.code[0].for_each_op([&](const Operation& op) {
    for_each_read(op, [&](int) { ++reads; });
    for_each_write(op, [&](int) { ++writes; });
  });
  EXPECT_EQ(reads, 2);  // base r2 and value r3
  EXPECT_EQ(writes, 0);
}

TEST(OperandWalkers, CompareWritesBregSlctReadsIt) {
  const Program p = assemble(
      "c1 cmplt b2 = r1, 100\n"
      "c1 slct r3 = b2, r4, r5\n");
  p.code[0].for_each_op([&](const Operation& op) {
    for_each_write(op, [&](int loc) { EXPECT_EQ(loc, breg_loc(1, 2)); });
  });
  bool breg_read = false;
  p.code[1].for_each_op([&](const Operation& op) {
    for_each_read(op, [&](int loc) { breg_read |= loc == breg_loc(1, 2); });
  });
  EXPECT_TRUE(breg_read);
}

// --- CFG -------------------------------------------------------------------

TEST(Cfg, StraightLineIsOneBlock) {
  const Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 add r2 = r1, r1\n"
      "c0 halt\n");
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.size(), 1u);
  EXPECT_EQ(cfg.blocks()[0].first, 0u);
  EXPECT_EQ(cfg.blocks()[0].end, 3u);
  EXPECT_TRUE(cfg.reachable(0));
}

TEST(Cfg, ConditionalBranchSplitsBlocksWithBothEdges) {
  const Program p = assemble(
      "c0 cmplt b0 = r1, 100\n"
      "c0 br b0, @3\n"    // block 0: [0,2) -> {1, 2}
      "c0 movi r2 = 1\n"  // block 1: fallthrough
      "c0 halt\n");       // block 2: branch target
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.size(), 3u);
  const CfgBlock& entry = cfg.blocks()[static_cast<std::size_t>(
      cfg.block_of(0))];
  ASSERT_EQ(entry.succs.size(), 2u);
  EXPECT_NE(cfg.block_of(2), cfg.block_of(3));
  EXPECT_TRUE(cfg.reachable(cfg.block_of(3)));
}

TEST(Cfg, LoopBackEdgeAndPreds) {
  const Program p = assemble(
      "loop:\n"
      "c0 add r1 = r1, 1\n"
      "c0 cmplt b0 = r1, 10\n"
      "c0 br b0, loop\n"
      "c0 halt\n");
  const Cfg cfg = Cfg::build(p);
  const int body = cfg.block_of(0);
  const CfgBlock& block = cfg.blocks()[static_cast<std::size_t>(body)];
  // The loop body is its own predecessor through the back-edge.
  bool self_edge = false;
  for (const int s : block.succs) self_edge |= s == body;
  EXPECT_TRUE(self_edge);
}

TEST(Cfg, CodeAfterHaltIsUnreachable) {
  const Program p = assemble(
      "c0 halt\n"
      "c0 movi r1 = 1\n");
  const Cfg cfg = Cfg::build(p);
  EXPECT_TRUE(cfg.reachable(cfg.block_of(0)));
  EXPECT_FALSE(cfg.reachable(cfg.block_of(1)));
}

TEST(Cfg, OutOfRangeTargetContributesNoEdge) {
  // Malformed programs are the verifier's job to reject; the CFG must
  // still build without crashing and simply drop the impossible edge.
  Program p;
  p.name = "bad";
  VliwInstruction insn;
  insn.add(ops::jump(0, 99));
  p.code.push_back(insn);
  p.finalize();
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.size(), 1u);
  EXPECT_TRUE(cfg.blocks()[0].succs.empty());
}

// --- Liveness --------------------------------------------------------------

TEST(Liveness, ValueLiveUntilLastUse) {
  const Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 add r2 = r1, r1\n"
      "c0 stw 0x100[r0] = r2\n"
      "c0 halt\n");
  const Cfg cfg = Cfg::build(p);
  const Liveness live = solve_liveness(p, cfg);
  EXPECT_TRUE(live.live_out[0].contains(gpr_loc(0, 1)));
  EXPECT_TRUE(live.live_in[1].contains(gpr_loc(0, 1)));
  // Dead after its last read.
  EXPECT_FALSE(live.live_out[1].contains(gpr_loc(0, 1)));
  EXPECT_TRUE(live.live_in[2].contains(gpr_loc(0, 2)));
  EXPECT_TRUE(live.live_out[3].empty());
}

TEST(Liveness, LoopCarriedValueLiveAroundBackEdge) {
  const Program p = assemble(
      "c0 movi r1 = 0\n"
      "loop:\n"
      "c0 add r1 = r1, 1\n"
      "c0 cmplt b0 = r1, 10\n"
      "c0 br b0, loop\n"
      "c0 halt\n");
  const Cfg cfg = Cfg::build(p);
  const Liveness live = solve_liveness(p, cfg);
  // r1 is read again next iteration: live across the branch.
  EXPECT_TRUE(live.live_out[3].contains(gpr_loc(0, 1)));
  // b0 is consumed by the branch and not loop-carried.
  EXPECT_FALSE(live.live_out[3].contains(breg_loc(0, 0)));
}

TEST(Liveness, SameCycleReadObservesPreInstructionState) {
  // NUAL semantics: the add's read of r1 happens in live_in, so the movi
  // writing r1 in the same instruction does not satisfy it.
  const Program p = assemble(
      "c0 movi r1 = 9\n"
      "c0 movi r1 = 5 ; c0 add r2 = r1, r1\n"
      "c0 stw 0x100[r0] = r2\n"
      "c0 halt\n");
  const Cfg cfg = Cfg::build(p);
  const Liveness live = solve_liveness(p, cfg);
  EXPECT_TRUE(live.live_in[1].contains(gpr_loc(0, 1)));
  EXPECT_TRUE(live.live_out[0].contains(gpr_loc(0, 1)));
}

// --- Definitely-assigned ---------------------------------------------------

TEST(Assigned, EntryIsColdAndWritesAccumulate) {
  const Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 add r2 = r1, r1\n"
      "c0 halt\n");
  const Cfg cfg = Cfg::build(p);
  const Assigned assigned = solve_definitely_assigned(p, cfg);
  EXPECT_FALSE(assigned.assigned_in[0].contains(gpr_loc(0, 1)));
  EXPECT_TRUE(assigned.assigned_in[1].contains(gpr_loc(0, 1)));
  EXPECT_TRUE(assigned.assigned_in[2].contains(gpr_loc(0, 2)));
}

TEST(Assigned, MergeKeepsOnlyCommonWrites) {
  const Program p = assemble(
      "c0 cmplt b0 = r1, 100\n"
      "c0 br b0, @4\n"
      "c0 movi r2 = 1\n"     // only on the fallthrough path
      "c0 movi r3 = 2\n"     // both paths write r3 ...
      "c0 movi r3 = 3\n"     // ... the join point
      "c0 halt\n");
  const Cfg cfg = Cfg::build(p);
  const Assigned assigned = solve_definitely_assigned(p, cfg);
  // At the join (instruction 4): r2 written on one path only, b0 on both.
  EXPECT_FALSE(assigned.assigned_in[4].contains(gpr_loc(0, 2)));
  EXPECT_TRUE(assigned.assigned_in[4].contains(breg_loc(0, 0)));
  EXPECT_TRUE(assigned.assigned_in[5].contains(gpr_loc(0, 3)));
}

// --- Reaching definitions --------------------------------------------------

TEST(ReachingDefs, BothBranchDefsReachTheJoin) {
  const Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 cmplt b0 = r1, 100\n"
      "c0 br b0, @5\n"
      "c0 movi r2 = 10\n"  // def A of r2
      "c0 goto @6\n"
      "c0 movi r2 = 20\n"  // def B of r2
      "c0 stw 0x100[r0] = r2\n"
      "c0 halt\n");
  const Cfg cfg = Cfg::build(p);
  const ReachingDefs rd = solve_reaching_defs(p, cfg);
  const auto defs = rd.reaching(6, gpr_loc(0, 2));
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(rd.defs[defs[0]].instr, 3u);
  EXPECT_EQ(rd.defs[defs[1]].instr, 5u);
}

TEST(ReachingDefs, RedefinitionKillsEarlierDef) {
  const Program p = assemble(
      "c0 movi r1 = 1\n"
      "c0 movi r1 = 2\n"
      "c0 stw 0x100[r0] = r1\n"
      "c0 halt\n");
  const Cfg cfg = Cfg::build(p);
  const ReachingDefs rd = solve_reaching_defs(p, cfg);
  const auto defs = rd.reaching(2, gpr_loc(0, 1));
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(rd.defs[defs[0]].instr, 1u);
}

// --- Register pressure -----------------------------------------------------

TEST(Pressure, CountsSimultaneouslyLiveRegistersPerCluster) {
  const Program p = assemble(
      "c0 movi r1 = 1 ; c1 movi r10 = 5\n"
      "c0 movi r2 = 2\n"
      "c0 movi r3 = 3\n"
      "c0 add r4 = r1, r2 ; c1 add r11 = r10, r10\n"
      "c0 add r5 = r3, r4\n"
      "c0 stw 0x100[r0] = r5 ; c1 stw 0x104[r0] = r11\n"
      "c0 halt\n");
  const Cfg cfg = Cfg::build(p);
  const Liveness live = solve_liveness(p, cfg);
  const PressureResult pressure = register_pressure(p, live);
  // Before instruction 3, r1..r3 are all live on cluster 0.
  EXPECT_GE(pressure.max_gpr[0], 3);
  EXPECT_LE(pressure.max_gpr[0], 4);
  EXPECT_EQ(pressure.max_gpr[1], 1);
  EXPECT_EQ(pressure.max_gpr[2], 0);
}

}  // namespace
}  // namespace vexsim::cc
