// Scheduler legality: latency distances, resource limits, branch placement,
// live-out padding, copy co-scheduling — checked both directly and via the
// static verifier over randomly generated IR.
#include "cc/schedule.hpp"

#include <gtest/gtest.h>

#include "cc/compiler.hpp"
#include "cc/irgen.hpp"
#include "cc/verifier.hpp"
#include "isa/config.hpp"

namespace vexsim::cc {
namespace {

MachineConfig paper_cfg() {
  MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  cfg.branch_on_cluster0_only = false;
  return cfg;
}

TEST(Schedule, RespectsLatencies) {
  Builder b("f");
  const VReg x = b.movi(6);
  const VReg y = b.mpyi(x, 7);     // latency 2
  const VReg z = b.alui(Opcode::kAdd, y, 1);
  b.store(Opcode::kStw, b.movi(0x200), 0, z);
  b.halt();
  const IrFunction fn = std::move(b).take();
  const MachineConfig cfg = paper_cfg();
  const LFunction lfn = assign_clusters(fn, cfg);
  const FunctionSchedule sched = schedule(lfn, cfg);
  // Find the cycles of the multiply and its consumer.
  const LBlock& blk = lfn.blocks[0];
  int mul_cycle = -1, add_cycle = -1;
  for (std::size_t i = 0; i < blk.body.size(); ++i) {
    if (blk.body[i].opc == Opcode::kMpyl)
      mul_cycle = sched.blocks[0].cycle_of[i];
    if (blk.body[i].opc == Opcode::kAdd && blk.body[i].src1 == y)
      add_cycle = sched.blocks[0].cycle_of[i];
  }
  ASSERT_GE(mul_cycle, 0);
  ASSERT_GE(add_cycle, 0);
  EXPECT_GE(add_cycle - mul_cycle, 2);
}

TEST(Schedule, ResourceLimitsPackCycles) {
  // 8 independent ALU ops on a machine with 4 ALU slots per cluster: the
  // assigner spreads them, and no cycle overcommits any cluster.
  Builder b("f");
  std::vector<VReg> vals;
  for (int i = 0; i < 8; ++i) vals.push_back(b.movi(i));
  VReg acc = vals[0];
  for (int i = 1; i < 8; ++i) acc = b.alu(Opcode::kAdd, acc, vals[i]);
  b.store(Opcode::kStw, b.movi(0x200), 0, acc);
  b.halt();
  const MachineConfig cfg = paper_cfg();
  const Program prog = compile(std::move(b).take(), cfg);
  verify_or_throw(prog, cfg);
}

TEST(Schedule, BranchIsLastAndAfterCompare) {
  Builder b("f");
  const VReg n = b.fresh_global();
  b.assign_i(n, 3);
  const int body = b.new_block();
  b.jump(body);
  b.switch_to(body);
  b.assign_alui(n, Opcode::kAdd, n, -1);
  const VReg more = b.cmpi_b(Opcode::kCmpgt, n, 0);
  b.branch(more, body);
  const int fin = b.new_block();
  b.switch_to(fin);
  b.halt();
  const IrFunction fn = std::move(b).take();
  const MachineConfig cfg = paper_cfg();
  const LFunction lfn = assign_clusters(fn, cfg);
  const FunctionSchedule sched = schedule(lfn, cfg);
  const BlockSchedule& bs = sched.blocks[1];  // loop body
  // Compare-to-branch distance ≥ 2, branch in the last instruction.
  int cmp_cycle = -1;
  for (std::size_t i = 0; i < lfn.blocks[1].body.size(); ++i)
    if (is_compare(lfn.blocks[1].body[i].opc) &&
        lfn.blocks[1].body[i].dst_is_breg)
      cmp_cycle = bs.cycle_of[i];
  ASSERT_GE(cmp_cycle, 0);
  EXPECT_GE(bs.term_cycle - cmp_cycle, 2);
  EXPECT_EQ(bs.term_cycle, bs.length - 1);
}

TEST(Schedule, LiveOutPaddingCoversLatency) {
  // A global defined by a multiply just before the block ends: the block
  // must stretch so the write completes before any successor issues.
  Builder b("f");
  const VReg g = b.fresh_global();
  b.assign_i(g, 1);
  const int second = b.new_block();
  b.jump(second);
  b.switch_to(second);
  IrOp mul;  // g = g * 3 via assign-style op
  b.assign_alui(g, Opcode::kMpyl, g, 3);
  const int third = b.new_block();
  b.jump(third);
  b.switch_to(third);
  b.store(Opcode::kStw, b.movi(0x200), 0, g);
  b.halt();
  const IrFunction fn = std::move(b).take();
  const MachineConfig cfg = paper_cfg();
  const LFunction lfn = assign_clusters(fn, cfg);
  const FunctionSchedule sched = schedule(lfn, cfg);
  const BlockSchedule& bs = sched.blocks[1];
  int mul_cycle = -1;
  for (std::size_t i = 0; i < lfn.blocks[1].body.size(); ++i)
    if (lfn.blocks[1].body[i].opc == Opcode::kMpyl)
      mul_cycle = sched.blocks[1].cycle_of[i];
  ASSERT_GE(mul_cycle, 0);
  EXPECT_GE(bs.term_cycle, mul_cycle + 1);  // lat 2 → pad ≥ def + 1
}

TEST(Schedule, CopiesCoScheduled) {
  // Force cross-cluster traffic with hints: a *loaded* value (which cannot
  // be rematerialized) produced on cluster 0 and consumed on cluster 1 → a
  // send/recv pair co-scheduled in one instruction.
  Builder b("f");
  const VReg base = b.movi(0x300, /*cluster=*/0);
  const VReg x = b.load(Opcode::kLdw, base, 0, kMemSpaceReadOnly, 0);
  const VReg y = b.alui(Opcode::kAdd, x, 1, /*cluster=*/1);
  b.store(Opcode::kStw, b.movi(0x200, 1), 0, y, kMemSpaceDefault, 1);
  b.halt();
  const MachineConfig cfg = paper_cfg();
  CompileStats stats;
  const Program prog = compile(std::move(b).take(), cfg, &stats);
  EXPECT_GE(stats.copies_inserted, 1);
  verify_or_throw(prog, cfg);  // includes send/recv pairing checks
}

TEST(Schedule, RandomIrProgramsAreLegal) {
  const MachineConfig cfg = paper_cfg();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const GeneratedIr gen = generate_ir(seed);
    const Program prog = compile(gen.fn, cfg);
    const auto issues = verify_program(prog, cfg);
    EXPECT_TRUE(issues.empty())
        << "seed " << seed << ": " << issues.front().what << " at "
        << issues.front().instr;
  }
}

TEST(Schedule, HintedClustersHonoured) {
  Builder b("f");
  const VReg x = b.movi(5, /*cluster=*/2);
  b.store(Opcode::kStw, b.movi(0x200, 2), 0, x, kMemSpaceDefault, 2);
  b.halt();
  const MachineConfig cfg = paper_cfg();
  const LFunction lfn = assign_clusters(std::move(b).take(), cfg);
  for (const LOp& op : lfn.blocks[0].body) {
    if (!op.is_copy) {
      EXPECT_EQ(op.cluster, 2);
    }
  }
}

}  // namespace
}  // namespace vexsim::cc
