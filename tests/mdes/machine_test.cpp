// MachineConfig <-> description file: the shipped configs deserialize to
// the machines they claim, to_config() round-trips exactly, and a
// config-loaded machine is indistinguishable from its C++-literal twin all
// the way down to result-cache fingerprints and sweep-trajectory bytes.
#include "mdes/machine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/result_cache.hpp"
#include "harness/sweep.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

#ifndef VEXSIM_SOURCE_DIR
#define VEXSIM_SOURCE_DIR "."
#endif

namespace vexsim::mdes {
namespace {

std::string config_path(const std::string& name) {
  return std::string(VEXSIM_SOURCE_DIR) + "/configs/" + name;
}

MachineConfig reparse(const MachineConfig& m) {
  const ConfigFile file = ConfigFile::parse_text(to_config(m));
  const Interp interp(file);
  Diagnostics diags;
  const MachineConfig back = machine_from(file, interp, diags);
  EXPECT_TRUE(diags.empty())
      << diags.all().front().loc.str() << ": " << diags.all().front().message;
  return back;
}

Diagnostics diags_of(const std::string& text) {
  const ConfigFile file = ConfigFile::parse_text(text);
  const Interp interp(file);
  Diagnostics diags;
  (void)machine_from(file, interp, diags);
  return diags;
}

TEST(MdesMachine, Paper4x4ConfIsExactlyTheDefaultMachine) {
  const MachineConfig loaded = load_machine(config_path("paper4x4.conf"));
  EXPECT_EQ(loaded, MachineConfig{});
}

TEST(MdesMachine, Asym8422ConfDescribesTheAsymmetricMachine) {
  const MachineConfig m = load_machine(config_path("asym8422.conf"));
  EXPECT_EQ(m.geometry_name(), "8+4+2+2");
  EXPECT_EQ(m.clusters, 4);
  EXPECT_FALSE(m.cluster_renaming);
  EXPECT_EQ(m.total_issue_width(), 16);
  ASSERT_EQ(m.cluster_overrides.size(), 4u);
  // issue_width applies the paper's FU proportions per width.
  EXPECT_EQ(m.cluster_overrides[0].alus, 8);
  EXPECT_EQ(m.cluster_overrides[0].muls, 4);
  EXPECT_EQ(m.cluster_overrides[2].issue_slots, 2);
  EXPECT_EQ(m.cluster_overrides[2].muls, 1);
  // Shared base.conf supplies the paper caches via $(cache_kb) * 1024.
  EXPECT_EQ(m.icache.size_bytes, 64u * 1024u);
  EXPECT_EQ(m.dcache.miss_penalty, 20u);
}

TEST(MdesMachine, ToConfigRoundTripsDefaultAndAsymmetric) {
  EXPECT_EQ(reparse(MachineConfig{}), MachineConfig{});
  const MachineConfig asym = load_machine(config_path("asym8422.conf"));
  EXPECT_EQ(reparse(asym), asym);
}

TEST(MdesMachine, ToConfigRoundTripsRandomizedMachines) {
  Rng rng(20260808);
  for (int iter = 0; iter < 50; ++iter) {
    MachineConfig m;
    m.clusters = rng.range(1, kMaxClusters);
    m.cluster.issue_slots = rng.range(1, kMaxIssuePerCluster);
    m.cluster.alus = rng.range(0, 64);
    m.cluster.muls = rng.range(0, 64);
    m.cluster.mem_units = rng.range(0, 64);
    m.cluster.branch_units = rng.range(0, 64);
    if (rng.chance(0.5)) {
      m.cluster_overrides.assign(static_cast<std::size_t>(m.clusters),
                                 m.cluster);
      for (auto& res : m.cluster_overrides)
        res.issue_slots = rng.range(1, kMaxIssuePerCluster);
    }
    m.branch_on_cluster0_only = rng.chance(0.5);
    m.lat.alu = rng.range(1, 1000);
    m.lat.mul = rng.range(1, 1000);
    m.lat.mem = rng.range(1, 1000);
    m.lat.comm = rng.range(1, 1000);
    m.lat.cmp_to_branch = rng.range(1, 1000);
    m.lat.taken_branch_penalty = rng.range(0, 1000);
    m.icache.size_bytes = static_cast<std::uint32_t>(rng.range(1, 1 << 20));
    m.icache.assoc = static_cast<std::uint32_t>(rng.range(1, 1024));
    m.icache.line_bytes = static_cast<std::uint32_t>(rng.range(1, 4096));
    m.icache.miss_penalty = static_cast<std::uint32_t>(rng.range(0, 1000));
    m.icache.perfect = rng.chance(0.5);
    m.dcache = m.icache;
    m.dcache.assoc = static_cast<std::uint32_t>(rng.range(1, 1024));
    m.hw_threads = rng.range(1, 64);
    m.technique = Technique::kAll[rng.below(8)];
    m.cluster_renaming = rng.chance(0.5);
    m.rf_org = rng.chance(0.5) ? RegFileOrg::kPartitioned : RegFileOrg::kShared;
    m.stall_on_store_miss = rng.chance(0.5);
    m.memory.backend = rng.chance(0.5) ? MemBackendKind::kHierarchy
                                       : MemBackendKind::kFixed;
    m.memory.l1_mshrs = static_cast<std::uint32_t>(rng.range(1, 64));
    m.memory.l2.size_bytes = static_cast<std::uint32_t>(rng.range(1, 1 << 20));
    m.memory.l2.assoc = static_cast<std::uint32_t>(rng.range(1, 1024));
    m.memory.l2.line_bytes = static_cast<std::uint32_t>(rng.range(1, 4096));
    m.memory.l2.hit_latency = static_cast<std::uint32_t>(rng.range(1, 1000));
    m.memory.dram.banks = static_cast<std::uint32_t>(rng.range(1, 65536));
    m.memory.dram.row_bytes = static_cast<std::uint32_t>(rng.range(1, 1 << 20));
    m.memory.dram.t_row_hit = static_cast<std::uint32_t>(rng.range(1, 1000));
    m.memory.dram.t_row_closed = static_cast<std::uint32_t>(rng.range(1, 1000));
    m.memory.dram.t_row_conflict =
        static_cast<std::uint32_t>(rng.range(1, 1000));
    m.memory.dram.t_bank_busy = static_cast<std::uint32_t>(rng.range(1, 1000));
    EXPECT_EQ(reparse(m), m) << "iteration " << iter;
  }
}

TEST(MdesMachine, ConfigLoadedMachineSharesTheLiteralFingerprint) {
  harness::ExperimentOptions opt;
  opt.scale = 0.05;
  opt.budget = 2000;
  opt.timeslice = 500;
  opt.seed = 7;
  const MachineConfig loaded = load_machine(config_path("paper4x4.conf"));
  const MachineConfig literal;
  EXPECT_EQ(harness::point_fingerprint(loaded, "llhh", opt),
            harness::point_fingerprint(literal, "llhh", opt));
  // And a genuinely different machine gets a different fingerprint.
  MachineConfig narrow = literal;
  narrow.cluster.issue_slots = 2;
  EXPECT_NE(harness::point_fingerprint(narrow, "llhh", opt),
            harness::point_fingerprint(literal, "llhh", opt));
}

TEST(MdesMachine, ConfigLoadedMachineEmitsByteIdenticalSweepJson) {
  harness::ExperimentOptions opt;
  opt.scale = 0.05;
  opt.budget = 2000;
  opt.timeslice = 500;
  opt.seed = 7;
  const std::string workload = "synth:i0.7-m0.2-p0.5-s1";
  auto trajectory = [&](const MachineConfig& cfg) {
    const std::vector<harness::SweepPoint> points = {
        {"twin", cfg, workload, opt}};
    const auto results = harness::run_sweep(points, 1);
    return harness::sweep_json("twin_test", points, results).dump();
  };
  const std::string from_literal = trajectory(MachineConfig{});
  const std::string from_config =
      trajectory(load_machine(config_path("paper4x4.conf")));
  EXPECT_EQ(from_literal, from_config);
}

TEST(MdesMachine, UnknownKeysAndDanglingReferencesAreDiagnosed) {
  const Diagnostics d = diags_of(
      "[machine]\n"
      "clusters = 2\n"
      "clsuters = 4\n"            // typo -> unknown key
      "latency = 'nope'\n"        // dangling section reference
      "cluster = 'c'\n"
      "[c]\n"
      "issue_width = 4\n"
      "alsu = 1\n");              // typo inside a referenced section
  ASSERT_EQ(d.all().size(), 3u);
  EXPECT_NE(d.all()[0].message.find("unknown key 'alsu'"), std::string::npos);
  EXPECT_NE(d.all()[1].message.find("unknown section [nope]"),
            std::string::npos);
  EXPECT_NE(d.all()[2].message.find("unknown key 'clsuters'"),
            std::string::npos);
}

TEST(MdesMachine, OutOfRangeClusterIndexIsDiagnosed) {
  const Diagnostics d = diags_of(
      "[machine]\n"
      "clusters = 2\n"
      "cluster = 'c'\n"
      "cluster[5] = 'c'\n"
      "[c]\n"
      "issue_width = 4\n");
  ASSERT_EQ(d.all().size(), 1u);
  EXPECT_NE(d.all()[0].message.find("outside [0, 1]"), std::string::npos);
}

TEST(MdesMachine, MissingMachineSectionIsDiagnosed) {
  const Diagnostics d = diags_of("[scenario]\nworkload = 'llhh'\n");
  ASSERT_EQ(d.all().size(), 1u);
  EXPECT_NE(d.all()[0].message.find("missing [machine] section"),
            std::string::npos);
}

TEST(MdesMachine, LoadMachineAggregatesValidationIssues) {
  try {
    (void)load_machine("/nonexistent/machine.conf");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

TEST(MdesMachine, ValidateAggregatesEveryViolation) {
  MachineConfig m;
  m.hw_threads = 4;
  m.technique = Technique::ccsi(CommPolicy::kNoSplit);
  m.cluster_overrides.assign(4, m.cluster);
  m.cluster_overrides[1].issue_slots = 0;  // out of range
  m.lat.mem = 0;                           // below minimum
  // Asymmetric + renaming + multithreaded is a third, cross-field violation.
  const std::vector<std::string> issues = m.validate_issues();
  EXPECT_EQ(issues.size(), 3u);
  EXPECT_NE(issues[0].find("cluster 1: issue_slots = 0"), std::string::npos);
  try {
    m.validate();
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("invalid machine configuration"), std::string::npos);
    EXPECT_NE(msg.find("problem(s)"), std::string::npos);
    for (const std::string& issue : issues)
      EXPECT_NE(msg.find(issue), std::string::npos) << issue;
  }
  EXPECT_NO_THROW(MachineConfig{}.validate());
}

TEST(MdesMachine, TechniqueAndRegFileOrgParseRoundTrip) {
  for (const Technique& t : Technique::kAll)
    EXPECT_EQ(Technique::parse(t.name()), t) << t.name();
  try {
    (void)Technique::parse("WARP9");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("WARP9"), std::string::npos);
    EXPECT_NE(msg.find("CCSI NS"), std::string::npos);  // lists valid names
  }
  EXPECT_EQ(reg_file_org_from("partitioned"), RegFileOrg::kPartitioned);
  EXPECT_EQ(reg_file_org_from("shared"), RegFileOrg::kShared);
  EXPECT_EQ(to_string(RegFileOrg::kShared), "shared");
  EXPECT_THROW((void)reg_file_org_from("flat"), CheckError);
}

}  // namespace
}  // namespace vexsim::mdes
