// Description-file grammar: parsing, interpolation, and the hostile-input
// battery — every malformed file must come back as one aggregated
// CheckError with file:line diagnostics, never a crash or a hang.
#include "mdes/config_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mdes/interp.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace vexsim::mdes {
namespace {

// Fresh per-test directory for include-graph tests.
class TempTree {
 public:
  explicit TempTree(const std::string& tag)
      : dir_(testing::TempDir() + "/vexsim_mdes_" + tag) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  std::string write(const std::string& name, const std::string& text) const {
    const std::string path = dir_ + "/" + name;
    std::ofstream os(path, std::ios::binary);
    os << text;
    return path;
  }

 private:
  std::string dir_;
};

Value eval_ok(const ConfigFile& file, const std::string& text) {
  const Interp interp(file);
  Diagnostics diags;
  const auto v = interp.eval(text, {"<test>", 1}, diags);
  EXPECT_TRUE(diags.empty()) << diags.all().front().message;
  EXPECT_TRUE(v.has_value());
  return v.value_or(Value{});
}

std::string eval_err(const ConfigFile& file, const std::string& text) {
  const Interp interp(file);
  Diagnostics diags;
  const auto v = interp.eval(text, {"<test>", 1}, diags);
  EXPECT_FALSE(v.has_value());
  EXPECT_FALSE(diags.empty());
  return diags.empty() ? std::string() : diags.all().front().message;
}

TEST(ConfigFile, ParsesSectionsEntriesAndComments) {
  const ConfigFile file = ConfigFile::parse_text(
      "# leading comment\n"
      "issue = 4\n"
      "name = 'has # inside'  # trailing comment\n"
      "\n"
      "[machine]\n"
      "clusters = 2\n"
      "cluster[0:1] = 'c'\n");
  ASSERT_EQ(file.sections().size(), 2u);
  EXPECT_EQ(file.global().entries.size(), 2u);
  EXPECT_EQ(file.global().find("issue")->value, "4");
  EXPECT_EQ(file.global().find("name")->value, "'has # inside'");
  const Section* machine = file.section("machine");
  ASSERT_NE(machine, nullptr);
  EXPECT_EQ(machine->loc.line, 5);
  ASSERT_EQ(machine->entries.size(), 2u);
  EXPECT_EQ(machine->entries[1].key, "cluster");
  EXPECT_EQ(machine->entries[1].index, "0:1");
}

TEST(ConfigFile, AggregatesEveryProblemInOneThrow) {
  try {
    (void)ConfigFile::parse_text(
        "a = 1\n"
        "a = 2\n"          // duplicate key
        "= no key\n"       // bad line
        "[s]\n"
        "[s]\n"            // duplicate section
        "b =\n");          // missing value
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("4 problem(s)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate key 'a'"), std::string::npos);
    EXPECT_NE(msg.find("<config>:2"), std::string::npos);
    EXPECT_NE(msg.find("duplicate section [s]"), std::string::npos);
    EXPECT_NE(msg.find("no value"), std::string::npos);
  }
}

TEST(ConfigFile, DuplicateKeyAcrossDuplicateSectionIsReported) {
  // The duplicate section's entries merge into the original, so a key
  // collision across the two blocks is still caught.
  EXPECT_THROW((void)ConfigFile::parse_text("[s]\nk = 1\n[s]\nk = 2\n"),
               CheckError);
}

TEST(ConfigFile, IncludeSplicesSharedBase) {
  const TempTree tree("include_ok");
  tree.write("base.conf", "shared = 7\n[lat]\nalu = 1\n");
  const std::string root =
      tree.write("root.conf", "include 'base.conf'\nown = 2\n");
  const ConfigFile file = ConfigFile::parse_file(root);
  EXPECT_NE(file.global().find("shared"), nullptr);
  EXPECT_NE(file.global().find("own"), nullptr);
  EXPECT_NE(file.section("lat"), nullptr);
  // Locations point into the file that actually holds the line.
  EXPECT_NE(file.global().find("shared")->loc.file.find("base.conf"),
            std::string::npos);
}

TEST(ConfigFile, CyclicIncludeIsDiagnosedNotInfinite) {
  const TempTree tree("include_cycle");
  tree.write("b.conf", "include 'a.conf'\n");
  const std::string a = tree.write("a.conf", "include 'b.conf'\nx = 1\n");
  try {
    (void)ConfigFile::parse_file(a);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("cyclic include"),
              std::string::npos);
  }
}

TEST(ConfigFile, SelfIncludeIsDiagnosed) {
  const TempTree tree("include_self");
  const std::string a = tree.write("a.conf", "include 'a.conf'\n");
  EXPECT_THROW((void)ConfigFile::parse_file(a), CheckError);
}

TEST(ConfigFile, MissingIncludeAndMissingFileAreDiagnosed) {
  const TempTree tree("include_missing");
  const std::string root = tree.write("r.conf", "include 'nope.conf'\n");
  EXPECT_THROW((void)ConfigFile::parse_file(root), CheckError);
  EXPECT_THROW((void)ConfigFile::parse_file("/nonexistent/vexsim.conf"),
               CheckError);
}

TEST(ConfigFile, IncludeInsideSectionIsRejected) {
  EXPECT_THROW((void)ConfigFile::parse_text("[s]\ninclude 'x.conf'\n"),
               CheckError);
}

TEST(Interp, ArithmeticAndTypes) {
  const ConfigFile file = ConfigFile::parse_text("issue = 4\nkb = 64\n");
  EXPECT_EQ(eval_ok(file, "2*$(issue)+1").i, 9);
  EXPECT_EQ(eval_ok(file, "$(kb) * 1024").i, 65536);
  // Exact int division stays int; inexact promotes to double.
  EXPECT_EQ(eval_ok(file, "8/2").kind, Value::Kind::kInt);
  EXPECT_EQ(eval_ok(file, "8/2").i, 4);
  EXPECT_EQ(eval_ok(file, "$(issue)/8").kind, Value::Kind::kDouble);
  EXPECT_DOUBLE_EQ(eval_ok(file, "$(issue)/8").d, 0.5);
  EXPECT_EQ(eval_ok(file, "-(1+2)*3").i, -9);
  EXPECT_EQ(eval_ok(file, "true").b, true);
  EXPECT_EQ(eval_ok(file, "'i$(issue)-s1'").s, "i4-s1");
  EXPECT_EQ(eval_ok(file, "repeat('w-s@', 3)").s, "w-s1+w-s2+w-s3");
}

TEST(Interp, SelfReferentialVariableIsACycleDiagnostic) {
  const ConfigFile file = ConfigFile::parse_text("a = $(a)\nb = $(c)\nc = $(b)\n");
  EXPECT_NE(eval_err(file, "$(a)").find("cyclic variable reference"),
            std::string::npos);
  EXPECT_NE(eval_err(file, "$(b)").find("cyclic"), std::string::npos);
}

TEST(Interp, DivisionByZeroIsADiagnostic) {
  const ConfigFile file = ConfigFile::parse_text("z = 0\n");
  EXPECT_NE(eval_err(file, "1/0").find("division by zero"),
            std::string::npos);
  EXPECT_NE(eval_err(file, "4/$(z)").find("division by zero"),
            std::string::npos);
  EXPECT_NE(eval_err(file, "1.5/0.0").find("division by zero"),
            std::string::npos);
}

TEST(Interp, ErrorsAreDiagnosticsNotCrashes) {
  const ConfigFile file = ConfigFile::parse_text("s = 'text'\n");
  EXPECT_NE(eval_err(file, "$(missing)").find("unknown variable"),
            std::string::npos);
  EXPECT_NE(eval_err(file, "1 + $(s)").find("arithmetic"),
            std::string::npos);
  (void)eval_err(file, "1 +");
  (void)eval_err(file, "(1");
  (void)eval_err(file, "'unterminated");
  (void)eval_err(file, "1 2");
  (void)eval_err(file, "repeat('x', 0)");
  (void)eval_err(file, "99999999999999999999999999");
  (void)eval_err(file, "bogusword");
}

TEST(SectionReader, TypedAccessAndUnknownKeys) {
  const ConfigFile file = ConfigFile::parse_text(
      "[s]\n"
      "n = 4\n"
      "x = 0.5\n"
      "flag = true\n"
      "name = 'abc'\n"
      "typo = 1\n");
  const Interp interp(file);
  Diagnostics diags;
  SectionReader r(interp, *file.section("s"), diags);
  EXPECT_EQ(r.get_int("n", 0), 4);
  EXPECT_DOUBLE_EQ(r.get_double("x", 0.0), 0.5);
  EXPECT_EQ(r.get_bool("flag", false), true);
  EXPECT_EQ(r.get_string("name", ""), "abc");
  EXPECT_EQ(r.get_int("absent", 9), 9);
  r.check_unknown("[s]");
  ASSERT_EQ(diags.all().size(), 1u);
  EXPECT_NE(diags.all()[0].message.find("unknown key 'typo'"),
            std::string::npos);
}

TEST(SectionReader, RangeAndTypeMismatchesAreDiagnostics) {
  const ConfigFile file = ConfigFile::parse_text(
      "[s]\n"
      "n = 99\n"
      "m = 'str'\n");
  const Interp interp(file);
  Diagnostics diags;
  SectionReader r(interp, *file.section("s"), diags);
  EXPECT_EQ(r.get_int_in("n", 1, 0, 8), 1);  // default on range violation
  EXPECT_EQ(r.get_int("m", 5), 5);           // default on type mismatch
  EXPECT_EQ(diags.all().size(), 2u);
}

TEST(SectionReader, IndexedStringsRangesOverlapsAndBounds) {
  const ConfigFile file = ConfigFile::parse_text(
      "n = 4\n"
      "[s]\n"
      "c[0] = 'a'\n"
      "c[1:$(n)-2] = 'b'\n");
  const Interp interp(file);
  Diagnostics diags;
  SectionReader r(interp, *file.section("s"), diags);
  const auto slots = r.indexed_strings("c", 4);
  EXPECT_TRUE(diags.empty());
  ASSERT_EQ(slots.size(), 4u);
  EXPECT_EQ(slots[0].value(), "a");
  EXPECT_EQ(slots[1].value(), "b");
  EXPECT_EQ(slots[2].value(), "b");
  EXPECT_FALSE(slots[3].has_value());

  // Out-of-range index.
  const ConfigFile oob = ConfigFile::parse_text("[s]\nc[7] = 'a'\n");
  const Interp oob_interp(oob);
  Diagnostics d2;
  SectionReader r2(oob_interp, *oob.section("s"), d2);
  (void)r2.indexed_strings("c", 4);
  ASSERT_EQ(d2.all().size(), 1u);
  EXPECT_NE(d2.all()[0].message.find("outside [0, 3]"), std::string::npos);

  // Overlapping coverage names the earlier owner.
  const ConfigFile overlap =
      ConfigFile::parse_text("[s]\nc[0:2] = 'a'\nc[2:3] = 'b'\n");
  const Interp overlap_interp(overlap);
  Diagnostics d3;
  SectionReader r3(overlap_interp, *overlap.section("s"), d3);
  (void)r3.indexed_strings("c", 4);
  ASSERT_EQ(d3.all().size(), 1u);
  EXPECT_NE(d3.all()[0].message.find("already covered"), std::string::npos);

  // Empty range (lo > hi).
  const ConfigFile empty = ConfigFile::parse_text("[s]\nc[3:1] = 'a'\n");
  const Interp empty_interp(empty);
  Diagnostics d4;
  SectionReader r4(empty_interp, *empty.section("s"), d4);
  (void)r4.indexed_strings("c", 4);
  ASSERT_EQ(d4.all().size(), 1u);
  EXPECT_NE(d4.all()[0].message.find("empty range"), std::string::npos);
}

// Fuzz-ish smoke: seeded random token soup must always come back as either
// a parsed file or a CheckError — no crash, no hang, no uncaught throw.
// Runs under the ASan/UBSan tier-1 preset in CI like every other test.
TEST(ConfigFile, RandomTokenSoupNeverCrashes) {
  const char* tokens[] = {"[",      "]",     "=",     "$(",    ")",
                          "include", "'",    "\"",    "#",     "a",
                          "cluster", "1",    "0.5",   "+",     "-",
                          "*",       "/",    "\n",    " ",     "repeat",
                          "true",    "s@",   ":",     ",",     "(",
                          "1e308",   "_",    "\t",    "9999999999999999999"};
  constexpr int kTokenCount = sizeof(tokens) / sizeof(tokens[0]);
  Rng rng(20260808);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 200; ++iter) {
    std::string text;
    const int len = 1 + static_cast<int>(rng.below(60));
    for (int k = 0; k < len; ++k)
      text += tokens[rng.below(kTokenCount)];
    try {
      const ConfigFile file = ConfigFile::parse_text(text, "<fuzz>");
      ++parsed;
      // Evaluate every entry too: the evaluator must also never crash.
      const Interp interp(file);
      for (const Section& sec : file.sections()) {
        for (const Entry& e : sec.entries) {
          Diagnostics diags;
          (void)interp.eval(e.value, e.loc, diags);
        }
      }
    } catch (const CheckError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 200);
  // The soup is hostile enough that both outcomes occur.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(parsed, 0);
}

}  // namespace
}  // namespace vexsim::mdes
