// Design-space-exploration templates: axis parsing, deterministic
// jobs-independent sampling, and the rejection (vs template-bug) split.
#include "mdes/dse.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "util/check.hpp"

#ifndef VEXSIM_SOURCE_DIR
#define VEXSIM_SOURCE_DIR "."
#endif

namespace vexsim::mdes {
namespace {

std::string shipped_template() {
  return std::string(VEXSIM_SOURCE_DIR) + "/configs/dse_template.conf";
}

// Writes a self-contained template (no includes) and returns its path.
std::string write_template(const std::string& tag, const std::string& text) {
  const std::string dir = testing::TempDir() + "/vexsim_dse_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/t.conf";
  std::ofstream os(path, std::ios::binary);
  os << text;
  return path;
}

constexpr const char* kTinyTemplate =
    "[dse]\n"
    "issue   = choice(2, 4, 8)\n"
    "threads = int(1, 4)\n"
    "ilp     = real(0.4, 0.9)\n"
    "[constraints]\n"
    "max_total_issue = 16\n"
    "[machine]\n"
    "clusters   = 4\n"
    "hw_threads = $(threads)\n"
    "cluster    = 'c'\n"
    "[c]\n"
    "issue_width = $(issue)\n"
    "[scenario]\n"
    "workload = repeat('synth:i$(ilp)-m0.2-s@', $(threads))\n"
    "budget   = 2000\n";

TEST(MdesDse, LoadsTheShippedTemplate) {
  const DseTemplate tmpl = load_template(shipped_template());
  ASSERT_EQ(tmpl.axes.size(), 6u);
  EXPECT_EQ(tmpl.axes[0].name, "clusters");
  EXPECT_EQ(tmpl.axes[0].kind, DseAxis::Kind::kChoice);
  EXPECT_EQ(tmpl.axes[2].name, "threads");
  EXPECT_EQ(tmpl.axes[2].kind, DseAxis::Kind::kInt);
  EXPECT_EQ(tmpl.axes[2].ilo, 2);
  EXPECT_EQ(tmpl.axes[2].ihi, 4);
  EXPECT_EQ(tmpl.axes[3].name, "technique");
  ASSERT_EQ(tmpl.axes[3].choices.size(), 3u);
  EXPECT_EQ(tmpl.axes[3].choices[0].s, "CSMT");
  EXPECT_EQ(tmpl.axes[4].kind, DseAxis::Kind::kReal);
  EXPECT_DOUBLE_EQ(tmpl.axes[4].rlo, 0.4);
  EXPECT_EQ(tmpl.axes[5].name, "membk");
  EXPECT_EQ(tmpl.axes[5].kind, DseAxis::Kind::kChoice);
  ASSERT_EQ(tmpl.axes[5].choices.size(), 2u);
  EXPECT_EQ(tmpl.axes[5].choices[1].s, "hierarchy");
  EXPECT_EQ(tmpl.max_total_issue, 16);
  EXPECT_EQ(tmpl.min_total_issue, 4);
}

TEST(MdesDse, SamplingIsDeterministicPerSeedAndIndex) {
  const DseTemplate tmpl = load_template(shipped_template());
  for (std::uint64_t index : {0u, 1u, 7u, 63u}) {
    const DsePoint a = sample_point(tmpl, 7, index);
    const DsePoint b = sample_point(tmpl, 7, index);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.reject_reason, b.reject_reason);
    EXPECT_EQ(a.bindings, b.bindings);
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.scenario, b.scenario);
  }
  // A different seed changes at least one of the first few draws.
  bool any_difference = false;
  for (std::uint64_t index = 0; index < 8 && !any_difference; ++index)
    any_difference = !(sample_point(tmpl, 7, index).bindings ==
                       sample_point(tmpl, 8, index).bindings);
  EXPECT_TRUE(any_difference);
}

TEST(MdesDse, DrawsRespectTheDeclaredRanges) {
  const std::string path = write_template("ranges", kTinyTemplate);
  const DseTemplate tmpl = load_template(path);
  std::set<std::int64_t> issues_seen;
  for (std::uint64_t index = 0; index < 64; ++index) {
    const DsePoint p = sample_point(tmpl, 3, index);
    ASSERT_EQ(p.bindings.size(), 3u);
    const Value& issue = p.bindings[0].second;
    const Value& threads = p.bindings[1].second;
    const Value& ilp = p.bindings[2].second;
    EXPECT_TRUE(issue.i == 2 || issue.i == 4 || issue.i == 8);
    EXPECT_GE(threads.i, 1);
    EXPECT_LE(threads.i, 4);
    EXPECT_GE(ilp.d, 0.4);
    EXPECT_LT(ilp.d, 0.9);
    issues_seen.insert(issue.i);
    // The bound values really drive the evaluated sections.
    EXPECT_EQ(p.machine.hw_threads, threads.i);
    EXPECT_EQ(p.machine.cluster.issue_slots, issue.i);
  }
  EXPECT_EQ(issues_seen.size(), 3u);  // 64 draws hit every choice
}

TEST(MdesDse, ConstraintFailuresRejectWithAReason) {
  const std::string path = write_template("rejects", kTinyTemplate);
  const DseTemplate tmpl = load_template(path);
  int accepted = 0, rejected = 0;
  for (std::uint64_t index = 0; index < 64; ++index) {
    const DsePoint p = sample_point(tmpl, 3, index);
    if (p.ok) {
      EXPECT_TRUE(p.reject_reason.empty());
      EXPECT_LE(p.machine.total_issue_width(), 16);
      ++accepted;
    } else {
      // 4 clusters x 8-issue = 32 > 16 is the only reject in this space.
      EXPECT_NE(p.reject_reason.find("exceeds max_total_issue 16"),
                std::string::npos)
          << p.reject_reason;
      ++rejected;
    }
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
}

TEST(MdesDse, ImpossibleConstraintRejectsEverything) {
  const std::string path = write_template(
      "impossible",
      "[dse]\n"
      "issue = choice(2, 4)\n"
      "[constraints]\n"
      "min_total_issue = 100\n"
      "[machine]\n"
      "clusters = 2\n"
      "cluster  = 'c'\n"
      "[c]\n"
      "issue_width = $(issue)\n"
      "[scenario]\n"
      "workload = 'llhh'\n");
  const DseTemplate tmpl = load_template(path);
  for (std::uint64_t index = 0; index < 16; ++index) {
    const DsePoint p = sample_point(tmpl, 1, index);
    EXPECT_FALSE(p.ok);
    EXPECT_NE(p.reject_reason.find("below min_total_issue 100"),
              std::string::npos);
  }
}

TEST(MdesDse, InvalidSampledMachineIsARejectionNotAnError) {
  // hw_threads axis can exceed nothing here, but renaming + asymmetry can't
  // happen; instead drive an invalid machine via a shared register file
  // with split-issue, which validate_issues rejects.
  const std::string path = write_template(
      "invalid",
      "[dse]\n"
      "org = choice('partitioned', 'shared')\n"
      "[machine]\n"
      "hw_threads = 2\n"
      "technique  = 'CCSI NS'\n"
      "rf_org     = '$(org)'\n"
      "[scenario]\n"
      "workload = 'llhh'\n");
  const DseTemplate tmpl = load_template(path);
  int ok = 0, rejected = 0;
  for (std::uint64_t index = 0; index < 32; ++index) {
    const DsePoint p = sample_point(tmpl, 5, index);
    if (p.ok) {
      ++ok;
    } else {
      EXPECT_NE(p.reject_reason.find("invalid machine:"), std::string::npos);
      ++rejected;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(rejected, 0);
}

TEST(MdesDse, TemplateBugsThrowInsteadOfRejecting) {
  // Unknown key under bound axes: an evaluation-time template bug.
  const std::string path = write_template(
      "bug",
      "[dse]\n"
      "issue = choice(2, 4)\n"
      "[machine]\n"
      "issue_wdith = $(issue)\n"  // typo: unknown [machine] key
      "[scenario]\n"
      "workload = 'llhh'\n");
  const DseTemplate tmpl = load_template(path);
  EXPECT_THROW((void)sample_point(tmpl, 1, 0), CheckError);
}

TEST(MdesDse, BadAxisSpecsAreAggregatedLoadErrors) {
  const std::string path = write_template(
      "badaxes",
      "[dse]\n"
      "a = gaussian(0, 1)\n"      // unknown distribution
      "b = int(4, 2)\n"           // inverted range
      "c = choice()\n"            // no values
      "d[0] = choice(1)\n"        // indexed axis
      "[machine]\n"
      "clusters = 2\n"
      "[scenario]\n"
      "workload = 'llhh'\n");
  try {
    (void)load_template(path);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    // choice() yields two diagnostics: the empty-expression evaluation
    // failure and the no-values check.
    EXPECT_NE(msg.find("5 problem(s)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown distribution 'gaussian'"), std::string::npos);
    EXPECT_NE(msg.find("bad int range [4, 2]"), std::string::npos);
    EXPECT_NE(msg.find("choice() needs at least one value"),
              std::string::npos);
    EXPECT_NE(msg.find("axes cannot be indexed"), std::string::npos);
  }
}

TEST(MdesDse, MissingSectionsAreLoadErrors) {
  const std::string path =
      write_template("nosections", "[dse]\nissue = choice(2)\n");
  try {
    (void)load_template(path);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("missing [machine] section"), std::string::npos);
    EXPECT_NE(msg.find("missing [scenario] section"), std::string::npos);
  }
}

}  // namespace
}  // namespace vexsim::mdes
