// [memory]/[l2]/[dram] description-file coverage: a full hierarchy machine
// deserializes field for field, hostile inputs (duplicate keys, zero banks,
// non-power-of-two geometry, unknown keys/backends, dangling references)
// produce aggregated file:line diagnostics, and to_config round-trips the
// memory sections exactly.
#include "mdes/machine.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/check.hpp"

namespace vexsim::mdes {
namespace {

MachineConfig machine_of(const std::string& text, Diagnostics& diags) {
  const ConfigFile file = ConfigFile::parse_text(text);
  const Interp interp(file);
  return machine_from(file, interp, diags);
}

const char* kHierarchyText =
    "[machine]\n"
    "memory = 'mem'\n"
    "[mem]\n"
    "backend = 'hierarchy'\n"
    "l1_mshrs = 16\n"
    "l2 = 'l2'\n"
    "dram = 'dram'\n"
    "[l2]\n"
    "size_bytes = 262144\n"
    "assoc = 4\n"
    "line_bytes = 128\n"
    "hit_latency = 15\n"
    "[dram]\n"
    "banks = 16\n"
    "row_bytes = 4096\n"
    "t_row_hit = 21\n"
    "t_row_closed = 33\n"
    "t_row_conflict = 47\n"
    "t_bank_busy = 8\n";

TEST(MdesMemory, HierarchyMachineDeserializesFieldForField) {
  Diagnostics diags;
  const MachineConfig m = machine_of(kHierarchyText, diags);
  ASSERT_TRUE(diags.empty())
      << diags.all().front().loc.str() << ": " << diags.all().front().message;
  EXPECT_EQ(m.memory.backend, MemBackendKind::kHierarchy);
  EXPECT_EQ(m.memory.l1_mshrs, 16u);
  EXPECT_EQ(m.memory.l2.size_bytes, 262144u);
  EXPECT_EQ(m.memory.l2.assoc, 4u);
  EXPECT_EQ(m.memory.l2.line_bytes, 128u);
  EXPECT_EQ(m.memory.l2.hit_latency, 15u);
  EXPECT_EQ(m.memory.dram.banks, 16u);
  EXPECT_EQ(m.memory.dram.row_bytes, 4096u);
  EXPECT_EQ(m.memory.dram.t_row_hit, 21u);
  EXPECT_EQ(m.memory.dram.t_row_closed, 33u);
  EXPECT_EQ(m.memory.dram.t_row_conflict, 47u);
  EXPECT_EQ(m.memory.dram.t_bank_busy, 8u);
  EXPECT_TRUE(m.validate_issues().empty());
}

TEST(MdesMemory, OmittedMemorySectionKeepsTheFixedDefault) {
  Diagnostics diags;
  const MachineConfig m = machine_of("[machine]\nclusters = 2\n", diags);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(m.memory, MemoryConfig{});
  EXPECT_EQ(m.memory.backend, MemBackendKind::kFixed);
}

TEST(MdesMemory, DuplicateKeysAreAggregatedWithLocations) {
  try {
    (void)ConfigFile::parse_text(
        "[machine]\n"
        "memory = 'mem'\n"
        "[mem]\n"
        "l1_mshrs = 8\n"
        "l1_mshrs = 16\n"   // duplicate
        "dram = 'dram'\n"
        "[dram]\n"
        "banks = 8\n"
        "banks = 4\n");     // duplicate
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 problem(s)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate key 'l1_mshrs'"), std::string::npos);
    EXPECT_NE(msg.find("<config>:5"), std::string::npos);
    EXPECT_NE(msg.find("duplicate key 'banks'"), std::string::npos);
    EXPECT_NE(msg.find("<config>:9"), std::string::npos);
  }
}

TEST(MdesMemory, ZeroBanksAndOutOfRangeMshrsAreDiagnosedAtTheirLines) {
  Diagnostics diags;
  (void)machine_of(
      "[machine]\n"
      "memory = 'mem'\n"
      "[mem]\n"
      "l1_mshrs = 0\n"      // below [1, 64]
      "dram = 'dram'\n"
      "[dram]\n"
      "banks = 0\n",        // a DRAM needs at least one bank
      diags);
  ASSERT_EQ(diags.all().size(), 2u);
  EXPECT_NE(diags.all()[0].message.find("l1_mshrs = 0 out of range"),
            std::string::npos);
  EXPECT_EQ(diags.all()[0].loc.line, 4);
  EXPECT_NE(diags.all()[1].message.find("banks = 0 out of range"),
            std::string::npos);
  EXPECT_EQ(diags.all()[1].loc.line, 7);
}

TEST(MdesMemory, UnknownKeysBackendsAndDanglingReferencesAreDiagnosed) {
  Diagnostics diags;
  (void)machine_of(
      "[machine]\n"
      "memory = 'mem'\n"
      "[mem]\n"
      "backend = 'l3'\n"       // unknown backend name
      "mshrs = 4\n"            // typo -> unknown key
      "l2 = 'nope'\n"          // dangling section reference
      "dram = 'dram'\n"
      "[dram]\n"
      "rows = 9\n",            // typo inside a referenced section
      diags);
  ASSERT_EQ(diags.all().size(), 4u);
  bool saw_backend = false, saw_mshrs = false, saw_dangling = false,
       saw_rows = false;
  for (const auto& d : diags.all()) {
    saw_backend |= d.message.find("unknown memory backend 'l3'") !=
                   std::string::npos;
    saw_mshrs |= d.message.find("unknown key 'mshrs'") != std::string::npos;
    saw_dangling |=
        d.message.find("unknown section [nope]") != std::string::npos;
    saw_rows |= d.message.find("unknown key 'rows'") != std::string::npos;
  }
  EXPECT_TRUE(saw_backend && saw_mshrs && saw_dangling && saw_rows);
}

TEST(MdesMemory, ValidateIssuesCatchesCrossFieldGeometryViolations) {
  // A non-power-of-two L2 line breaks both the line check and the derived
  // set count (512 KiB / (96 * 8) is not a power of two either).
  MachineConfig bad_line;
  bad_line.memory.l2.line_bytes = 96;
  const auto line_issues = bad_line.validate_issues();
  ASSERT_EQ(line_issues.size(), 2u) << line_issues[0];
  EXPECT_NE(line_issues[0].find("memory.l2.line_bytes = 96"),
            std::string::npos);
  EXPECT_NE(line_issues[1].find("power-of-two set count"), std::string::npos);

  // DRAM geometry: non-power-of-two banks, and a row buffer smaller than
  // the L2 line it must hold.
  MachineConfig bad_dram;
  bad_dram.memory.dram.banks = 3;
  bad_dram.memory.dram.row_bytes = 32;  // power of two but < line (64)
  const auto dram_issues = bad_dram.validate_issues();
  ASSERT_EQ(dram_issues.size(), 2u) << dram_issues[0];
  EXPECT_NE(dram_issues[0].find("memory.dram.banks = 3"), std::string::npos);
  EXPECT_NE(dram_issues[1].find("smaller than memory.l2.line_bytes"),
            std::string::npos);

  MachineConfig zero;
  zero.memory.dram.banks = 0;
  bool saw_zero = false;
  for (const std::string& issue : zero.validate_issues())
    saw_zero |= issue.find("at least one bank") != std::string::npos;
  EXPECT_TRUE(saw_zero);
}

TEST(MdesMemory, BackendNamesRoundTrip) {
  EXPECT_EQ(to_string(MemBackendKind::kFixed), "fixed");
  EXPECT_EQ(to_string(MemBackendKind::kHierarchy), "hierarchy");
  EXPECT_EQ(mem_backend_from("fixed"), MemBackendKind::kFixed);
  EXPECT_EQ(mem_backend_from("hierarchy"), MemBackendKind::kHierarchy);
  try {
    (void)mem_backend_from("l3");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("l3"), std::string::npos);
    EXPECT_NE(msg.find("hierarchy"), std::string::npos);  // lists valid names
  }
}

TEST(MdesMemory, ToConfigRoundTripsTheHierarchySections) {
  Diagnostics diags;
  MachineConfig m = machine_of(kHierarchyText, diags);
  ASSERT_TRUE(diags.empty());
  const ConfigFile file = ConfigFile::parse_text(to_config(m));
  const Interp interp(file);
  Diagnostics back_diags;
  const MachineConfig back = machine_from(file, interp, back_diags);
  EXPECT_TRUE(back_diags.empty());
  EXPECT_EQ(back, m);
  EXPECT_EQ(back.memory, m.memory);
}

}  // namespace
}  // namespace vexsim::mdes
