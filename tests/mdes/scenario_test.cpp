// Scenario descriptions: [scenario] deserialization, the contexts/technique
// overlays onto the machine, and exact to_config() round trips.
#include "mdes/scenario.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/check.hpp"

#ifndef VEXSIM_SOURCE_DIR
#define VEXSIM_SOURCE_DIR "."
#endif

namespace vexsim::mdes {
namespace {

std::string config_path(const std::string& name) {
  return std::string(VEXSIM_SOURCE_DIR) + "/configs/" + name;
}

Scenario parse_scenario(const std::string& text, Diagnostics& diags) {
  const ConfigFile file = ConfigFile::parse_text(text);
  const Interp interp(file);
  return scenario_from(file, interp, diags);
}

Scenario parse_scenario_ok(const std::string& text) {
  Diagnostics diags;
  const Scenario s = parse_scenario(text, diags);
  EXPECT_TRUE(diags.empty())
      << diags.all().front().loc.str() << ": " << diags.all().front().message;
  return s;
}

TEST(MdesScenario, ReadsEveryField) {
  const Scenario s = parse_scenario_ok(
      "[scenario]\n"
      "workload  = 'llhh'\n"
      "contexts  = 4\n"
      "technique = 'CCSI NS'\n"
      "scale     = 0.25\n"
      "budget    = 60000\n"
      "timeslice = 20000\n"
      "max_cycles = 1000000\n"
      "seed      = 11\n"
      "fast_forward = false\n"
      "fused = false\n"
      "compiler  = 'cost_swp'\n");
  EXPECT_EQ(s.workload, "llhh");
  EXPECT_EQ(s.contexts, 4);
  EXPECT_TRUE(s.has_technique);
  EXPECT_EQ(s.technique, Technique::ccsi(CommPolicy::kNoSplit));
  EXPECT_DOUBLE_EQ(s.opt.scale, 0.25);
  EXPECT_EQ(s.opt.budget, 60000u);
  EXPECT_EQ(s.opt.timeslice, 20000u);
  EXPECT_EQ(s.opt.max_cycles, 1000000u);
  EXPECT_EQ(s.opt.seed, 11u);
  EXPECT_FALSE(s.opt.fast_forward);
  EXPECT_FALSE(s.opt.fused);
  EXPECT_EQ(s.opt.compiler.name(), "cost_swp");
}

TEST(MdesScenario, OmittedKeysKeepDefaults) {
  const Scenario s = parse_scenario_ok("[scenario]\nworkload = 'llhh'\n");
  const harness::ExperimentOptions defaults;
  EXPECT_EQ(s.contexts, 0);  // 0 = keep the machine's hw_threads
  EXPECT_FALSE(s.has_technique);
  EXPECT_EQ(s.opt, defaults);
}

TEST(MdesScenario, ProblemsAreAggregatedDiagnostics) {
  Diagnostics diags;
  (void)parse_scenario(
      "[scenario]\n"
      "contexts  = 4\n"           // but no workload
      "technique = 'WARP9'\n"     // unknown technique
      "compiler  = 'O9'\n"        // unknown compiler variant
      "budget    = -3\n"          // negative
      "typo      = 1\n",          // unknown key
      diags);
  ASSERT_EQ(diags.all().size(), 5u);
  EXPECT_NE(diags.all()[0].message.find("workload"), std::string::npos);
  EXPECT_NE(diags.all()[1].message.find("WARP9"), std::string::npos);
  EXPECT_NE(diags.all()[2].message.find("must be non-negative"),
            std::string::npos);
  EXPECT_NE(diags.all()[3].message.find("O9"), std::string::npos);
  EXPECT_NE(diags.all()[4].message.find("unknown key 'typo'"),
            std::string::npos);
}

TEST(MdesScenario, MissingSectionIsADiagnostic) {
  Diagnostics diags;
  (void)parse_scenario("[machine]\nclusters = 2\n", diags);
  ASSERT_EQ(diags.all().size(), 1u);
  EXPECT_NE(diags.all()[0].message.find("missing [scenario] section"),
            std::string::npos);
}

TEST(MdesScenario, ApplyOverlaysContextsAndTechnique) {
  Scenario s;
  s.workload = "llhh";
  MachineConfig base;  // 1 thread, SMT
  // Nothing set: the machine passes through untouched.
  EXPECT_EQ(apply(s, base), base);
  s.contexts = 4;
  s.has_technique = true;
  s.technique = Technique::ccsi(CommPolicy::kAlwaysSplit);
  const MachineConfig over = apply(s, base);
  EXPECT_EQ(over.hw_threads, 4);
  EXPECT_EQ(over.technique, Technique::ccsi(CommPolicy::kAlwaysSplit));
}

TEST(MdesScenario, ToConfigRoundTripsExactly) {
  Scenario s;
  s.workload = "synth:i0.7-m0.2-p0.5-s1+synth:i0.7-m0.2-p0.5-s2";
  s.contexts = 2;
  s.has_technique = true;
  s.technique = Technique::cosi(CommPolicy::kNoSplit);
  s.opt.scale = 0.05;
  s.opt.budget = 2000;
  s.opt.timeslice = 500;
  s.opt.max_cycles = 123456789;
  s.opt.seed = 7;
  s.opt.fast_forward = false;
  s.opt.compiler = cc::CompilerOptions::parse("cost");
  EXPECT_EQ(parse_scenario_ok(to_config(s)), s);

  // Overlays absent: the contexts/technique lines are omitted and the
  // round trip still lands on the exact value.
  Scenario plain;
  plain.workload = "llhh";
  EXPECT_EQ(parse_scenario_ok(to_config(plain)), plain);
}

TEST(MdesScenario, LoadMachineScenarioAppliesOverlays) {
  const MachineScenario ms =
      load_machine_scenario(config_path("paper4x4.conf"));
  // The file's machine is single-threaded; the scenario lifts it to the
  // paper's headline 4-context CCSI NS operating point.
  EXPECT_EQ(ms.machine.hw_threads, 4);
  EXPECT_EQ(ms.machine.technique, Technique::ccsi(CommPolicy::kNoSplit));
  EXPECT_EQ(ms.scenario.workload, "llhh");
  EXPECT_EQ(ms.scenario.opt.budget, 60000u);
  // Everything but the overlays is still the default machine.
  MachineConfig expect;
  expect.hw_threads = 4;
  expect.technique = Technique::ccsi(CommPolicy::kNoSplit);
  EXPECT_EQ(ms.machine, expect);
}

TEST(MdesScenario, LoadMachineScenarioRejectsInvalidCombination) {
  // asym8422 forbids renaming; force a contexts overlay that would pass
  // through but leave an invalid machine if renaming were re-enabled.
  const ConfigFile file = ConfigFile::parse_file(config_path("asym8422.conf"));
  const Interp interp(file);
  Diagnostics diags;
  MachineConfig m = machine_from(file, interp, diags);
  ASSERT_TRUE(diags.empty());
  m.cluster_renaming = true;  // asymmetric + 4 contexts: invalid
  m.hw_threads = 4;
  EXPECT_FALSE(m.validate_issues().empty());
  EXPECT_THROW(m.validate(), CheckError);
}

}  // namespace
}  // namespace vexsim::mdes
