#include "vasm/assembler.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace vexsim {
namespace {

TEST(Assembler, BasicAluLine) {
  const Program p = assemble("c0 add r1 = r2, r3");
  ASSERT_EQ(p.code.size(), 1u);
  EXPECT_EQ(p.code[0].bundle(0)[0], ops::alu(Opcode::kAdd, 0, 1, 2, 3));
}

TEST(Assembler, MultipleOpsPerLine) {
  const Program p = assemble("c0 add r1 = r2, r3 ; c1 mov r4 = r5");
  EXPECT_EQ(p.code[0].op_count(), 2);
  EXPECT_EQ(p.code[0].bundle(1)[0], ops::mov(1, 4, 5));
}

TEST(Assembler, ImmediateOperand) {
  const Program p = assemble("c2 shl r1 = r2, 12");
  EXPECT_EQ(p.code[0].bundle(2)[0], ops::alui(Opcode::kShl, 2, 1, 2, 12));
}

TEST(Assembler, MoviAndNegative) {
  const Program p = assemble("c0 movi r9 = -42");
  EXPECT_EQ(p.code[0].bundle(0)[0], ops::movi(0, 9, -42));
}

TEST(Assembler, LoadsAndStores) {
  const Program p = assemble(
      "c0 ldw r1 = 8[r2]\n"
      "c1 stw 4[r3] = r4\n"
      "c0 ldbu r5 = 0[r6]");
  EXPECT_EQ(p.code[0].bundle(0)[0], ops::load(Opcode::kLdw, 0, 1, 2, 8));
  EXPECT_EQ(p.code[1].bundle(1)[0], ops::store(Opcode::kStw, 1, 3, 4, 4));
  EXPECT_EQ(p.code[2].bundle(0)[0], ops::load(Opcode::kLdbu, 0, 5, 6, 0));
}

TEST(Assembler, CompareToBreg) {
  const Program p = assemble("c0 cmplt b1 = r2, 100");
  EXPECT_EQ(p.code[0].bundle(0)[0],
            ops::cmpi_breg(Opcode::kCmplt, 0, 1, 2, 100));
}

TEST(Assembler, Slct) {
  const Program p = assemble("c0 slct r1 = b2, r3, r4");
  EXPECT_EQ(p.code[0].bundle(0)[0], ops::slct(0, 1, 2, 3, 4));
}

TEST(Assembler, LabelsAndBranches) {
  const Program p = assemble(
      "top:\n"
      "  c0 add r1 = r1, 1\n"
      "  c0 cmplt b0 = r1, 10\n"
      "  nop\n"
      "  c0 br b0, top\n"
      "  c0 halt\n");
  ASSERT_EQ(p.code.size(), 5u);
  EXPECT_EQ(p.code[3].bundle(0)[0].imm, 0);  // top = instruction 0
  EXPECT_EQ(p.code[3].bundle(0)[0].opc, Opcode::kBr);
}

TEST(Assembler, ForwardLabel) {
  const Program p = assemble(
      "  c0 goto done\n"
      "  c0 add r1 = r1, 1\n"
      "done:\n"
      "  c0 halt\n");
  EXPECT_EQ(p.code[0].bundle(0)[0].imm, 2);
}

TEST(Assembler, NumericBranchTarget) {
  const Program p = assemble("c0 brf b3, @7\nnop\nnop\nnop\nnop\nnop\nnop\nnop");
  EXPECT_EQ(p.code[0].bundle(0)[0], ops::brf(0, 3, 7));
}

TEST(Assembler, SendRecv) {
  const Program p = assemble("c0 send ch2 = r5 ; c1 recv r7 = ch2");
  EXPECT_EQ(p.code[0].bundle(0)[0], ops::send(0, 5, 2));
  EXPECT_EQ(p.code[0].bundle(1)[0], ops::recv(1, 7, 2));
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(
      "# full line comment\n"
      "\n"
      "c0 add r1 = r2, r3  # trailing comment\n"
      ";; another comment style\n"
      "nop\n");
  EXPECT_EQ(p.code.size(), 2u);
}

TEST(Assembler, NopLine) {
  const Program p = assemble("nop");
  EXPECT_TRUE(p.code[0].empty());
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble("c0 frobnicate r1 = r2"), CheckError);   // bad opcode
  EXPECT_THROW(assemble("add r1 = r2, r3"), CheckError);         // no cluster
  EXPECT_THROW(assemble("c0 br b0, nowhere"), CheckError);       // bad label
  EXPECT_THROW(assemble("c0 add r1 = r2, r3 extra"), CheckError);
  EXPECT_THROW(assemble("c0 add b1 = r2, r3"), CheckError);  // alu to breg
  EXPECT_THROW(assemble("dup:\ndup:\nnop"), CheckError);     // duplicate label
}

TEST(Assembler, RoundTripWithDisassembler) {
  const char* source =
      "  c0 add r1 = r2, r3 ; c1 ldw r4 = 8[r5]\n"
      "  c0 cmplt b0 = r1, 10\n"
      "  nop\n"
      "  c2 stw 0[r6] = r7 ; c0 send ch0 = r1 ; c3 recv r2 = ch0\n"
      "  c0 br b0, @0\n"
      "  c0 halt\n";
  const Program p1 = assemble(source);
  const Program p2 = assemble(to_string(p1));
  ASSERT_EQ(p1.code.size(), p2.code.size());
  for (std::size_t i = 0; i < p1.code.size(); ++i)
    EXPECT_EQ(p1.code[i], p2.code[i]) << "instruction " << i;
}

TEST(Assembler, ProgramIsFinalized) {
  const Program p = assemble("c0 halt");
  EXPECT_TRUE(p.finalized());
}

}  // namespace
}  // namespace vexsim
