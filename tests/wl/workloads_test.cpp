#include "workloads/workloads.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "harness/experiments.hpp"
#include "workloads/registry.hpp"

namespace vexsim::wl {
namespace {

TEST(Workloads, NineMixesMatchFigure13b) {
  const auto& specs = paper_workloads();
  ASSERT_EQ(specs.size(), 9u);
  EXPECT_EQ(specs[0].name, "llll");
  EXPECT_EQ(specs[8].name, "hhhh");
  const WorkloadSpec llhh = workload("llhh");
  EXPECT_EQ(llhh.benchmarks,
            (std::vector<std::string>{"mcf", "blowfish", "x264", "idct"}));
  EXPECT_THROW((void)workload("zzzz"), CheckError);
}

TEST(Workloads, ResolvesSingleAndComposedComponentLists) {
  const WorkloadSpec single = workload("mcf");
  EXPECT_EQ(single.benchmarks, (std::vector<std::string>{"mcf"}));

  const WorkloadSpec mixed = workload("mcf+synth:i0.8-s3+idct");
  EXPECT_EQ(mixed.name, "mcf+synth:i0.8-s3+idct");
  EXPECT_EQ(mixed.benchmarks,
            (std::vector<std::string>{"mcf", "synth:i0.8-s3", "idct"}));

  // Six components fill a six-context machine.
  const WorkloadSpec six = workload(
      "synth:i0.9-s1+synth:i0.9-s2+synth:i0.5-s3+synth:i0.5-s4+"
      "synth:i0.1-s5+synth:i0.1-s6");
  EXPECT_EQ(six.benchmarks.size(), 6u);
}

TEST(Workloads, UnknownNamesListValidOnes) {
  try {
    (void)workload("zzzz");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("llll"), std::string::npos) << what;
    EXPECT_NE(what.find("hhhh"), std::string::npos) << what;
    EXPECT_NE(what.find("mcf"), std::string::npos) << what;
    EXPECT_NE(what.find("synth:"), std::string::npos) << what;
  }
  // A bad component inside a composed list is reported too.
  EXPECT_THROW((void)workload("mcf+nonesuch"), CheckError);
  EXPECT_THROW((void)workload("mcf+"), CheckError);
  // Malformed synth components propagate the grammar error.
  EXPECT_THROW((void)workload("synth:q1"), CheckError);

  try {
    (void)benchmark_info("nonesuch");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mcf"), std::string::npos) << what;
    EXPECT_NE(what.find("colorspace"), std::string::npos) << what;
  }
}

TEST(Workloads, VariableLengthMixFillsSixContexts) {
  harness::ExperimentOptions opt;
  opt.scale = 0.02;
  opt.budget = 8'000;
  opt.timeslice = 4'000;
  opt.max_cycles = 20'000'000;
  const RunResult r = harness::run_workload(
      "mcf+djpeg+idct+synth:i0.8-s1+synth:i0.4-s2+synth:i0.1-s3", 6,
      Technique::smt(), opt);
  EXPECT_GT(r.ipc(), 0.0);
  ASSERT_EQ(r.instances.size(), 6u);
  for (const auto& inst : r.instances) EXPECT_FALSE(inst.faulted);
}

TEST(Workloads, NamesEncodeIlpClasses) {
  // Each mix's label must match the classes of its benchmarks, in order.
  for (const WorkloadSpec& spec : paper_workloads()) {
    ASSERT_EQ(spec.name.size(), 4u);
    std::string derived;
    for (const std::string& bench : spec.benchmarks)
      derived += static_cast<char>(benchmark_info(bench).ilp);
    // Labels are sorted combinations; the multiset of classes must agree.
    std::string label = spec.name;
    std::sort(label.begin(), label.end());
    std::sort(derived.begin(), derived.end());
    EXPECT_EQ(label, derived) << spec.name;
  }
}

TEST(Workloads, BuildProducesFourPrograms) {
  const MachineConfig cfg = MachineConfig::paper(2, Technique::csmt());
  const auto programs = build_workload(workload("mmmm"), cfg, 0.02);
  ASSERT_EQ(programs.size(), 4u);
  for (const auto& p : programs) EXPECT_TRUE(p->finalized());
}

TEST(Workloads, MixRunsUnderSmt) {
  harness::ExperimentOptions opt;
  opt.scale = 0.02;
  opt.budget = 20'000;
  opt.timeslice = 10'000;
  opt.max_cycles = 20'000'000;
  const RunResult r =
      harness::run_workload("llmm", 2, Technique::smt(), opt);
  EXPECT_GT(r.ipc(), 0.5);
  EXPECT_EQ(r.instances.size(), 4u);
  for (const auto& inst : r.instances) EXPECT_FALSE(inst.faulted);
}

TEST(Workloads, MultithreadingBeatsSingleThread) {
  harness::ExperimentOptions opt;
  opt.scale = 0.02;
  opt.budget = 20'000;
  opt.timeslice = 5'000;
  opt.max_cycles = 20'000'000;
  const RunResult smt2 = harness::run_workload("llmm", 2, Technique::smt(), opt);
  const RunResult smt4 = harness::run_workload("llmm", 4, Technique::smt(), opt);
  // More thread contexts → more merging opportunities → higher IPC.
  EXPECT_GT(smt4.ipc(), smt2.ipc() * 0.95);
  EXPECT_GT(smt2.ipc(), 0.0);
}


TEST(Workloads, MemoKeyIncludesCompilerOptions) {
  // Regression: the benchmark memo once keyed only on (name, geometry,
  // latencies, scale); any compiler knob would silently serve a program
  // compiled with different settings.
  const MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  const auto greedy = make_benchmark("idct", cfg, 0.1,
                                     cc::CompilerOptions::parse("greedy"));
  const auto swp = make_benchmark("idct", cfg, 0.1,
                                  cc::CompilerOptions::parse("greedy_swp"));
  EXPECT_NE(greedy.get(), swp.get());
  EXPECT_TRUE(greedy->kernels.empty());
  EXPECT_FALSE(swp->kernels.empty());
  // Same options again: the memo must serve the same program object.
  const auto again = make_benchmark("idct", cfg, 0.1,
                                    cc::CompilerOptions::parse("greedy"));
  EXPECT_EQ(greedy.get(), again.get());
}

TEST(Workloads, SynthSpecCompilerFieldOverridesCaller) {
  const MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  // A spec that pins its compiler compiles the same program whatever the
  // caller passes — and shares one memo entry.
  const auto pinned_a =
      make_benchmark("synth:i0.5-m0.2-p0.7-s2-ccgreedy", cfg, 0.1,
                     cc::CompilerOptions::parse("cost_swp"));
  const auto pinned_b =
      make_benchmark("synth:i0.5-m0.2-p0.7-s2-ccgreedy", cfg, 0.1,
                     cc::CompilerOptions::parse("greedy"));
  EXPECT_EQ(pinned_a.get(), pinned_b.get());
}

TEST(Workloads, BuildWorkloadAggregatesCompileSummary) {
  const MachineConfig cfg = MachineConfig::paper(4, Technique::csmt());
  CompileSummary sum;
  const WorkloadSpec spec = workload("llmm");
  auto programs = build_workload(spec, cfg, 0.1, cc::CompilerOptions{}, &sum);
  ASSERT_EQ(programs.size(), 4u);
  EXPECT_TRUE(sum.present);
  std::uint64_t instr = 0;
  for (const auto& p : programs) instr += p->code.size();
  EXPECT_EQ(sum.instructions, instr);
  EXPECT_GT(sum.ops_per_instruction(), 1.0);
}

}  // namespace
}  // namespace vexsim::wl
