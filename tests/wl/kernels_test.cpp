// Benchmark kernel sanity: every Figure 13(a) stand-in compiles, verifies,
// runs deterministically, and lands in its paper ILP band.
#include "workloads/registry.hpp"

#include <gtest/gtest.h>

#include "cc/verifier.hpp"
#include "harness/experiments.hpp"

namespace vexsim::wl {
namespace {

harness::ExperimentOptions quick_opts() {
  harness::ExperimentOptions opt;
  opt.scale = 0.02;
  opt.budget = 30'000;
  opt.max_cycles = 10'000'000;
  return opt;
}

TEST(Kernels, RegistryHasTwelveBenchmarks) {
  EXPECT_EQ(benchmark_registry().size(), 12u);
  EXPECT_EQ(benchmark_info("colorspace").ilp, IlpClass::kHigh);
  EXPECT_EQ(benchmark_info("mcf").ilp, IlpClass::kLow);
  EXPECT_DOUBLE_EQ(benchmark_info("colorspace").paper_ipcp, 8.88);
  EXPECT_THROW((void)benchmark_info("nonesuch"), CheckError);
}

TEST(Kernels, AllCompileAndVerify) {
  const MachineConfig cfg = MachineConfig::paper_single();
  for (const BenchmarkInfo& info : benchmark_registry()) {
    const auto prog = make_benchmark(info.name, cfg, 0.02);
    ASSERT_NE(prog, nullptr);
    EXPECT_GT(prog->code.size(), 4u) << info.name;
    const auto issues = cc::verify_program(*prog, cfg);
    EXPECT_TRUE(issues.empty())
        << info.name << ": " << (issues.empty() ? "" : issues.front().what);
  }
}

TEST(Kernels, ProgramsAreMemoized) {
  const MachineConfig cfg = MachineConfig::paper_single();
  const auto a = make_benchmark("idct", cfg, 0.02);
  const auto b = make_benchmark("idct", cfg, 0.02);
  EXPECT_EQ(a.get(), b.get());
  const auto c = make_benchmark("idct", cfg, 0.03);
  EXPECT_NE(a.get(), c.get());
}

class KernelIlpBand : public ::testing::TestWithParam<const char*> {};

TEST_P(KernelIlpBand, PerfectMemoryIpcInClassBand) {
  const BenchmarkInfo& info = benchmark_info(GetParam());
  const RunResult r = harness::run_single(info.name, /*perfect=*/true,
                                          quick_opts());
  const double ipc = r.ipc();
  switch (info.ilp) {
    case IlpClass::kLow:
      EXPECT_GT(ipc, 0.4) << info.name;
      EXPECT_LT(ipc, 2.2) << info.name;
      break;
    case IlpClass::kMedium:
      EXPECT_GT(ipc, 1.1) << info.name;
      EXPECT_LT(ipc, 3.2) << info.name;
      break;
    case IlpClass::kHigh:
      EXPECT_GT(ipc, 3.0) << info.name;
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelIlpBand,
    ::testing::Values("mcf", "bzip2", "blowfish", "gsmencode", "g721encode",
                      "g721decode", "cjpeg", "djpeg", "imgpipe", "x264",
                      "idct", "colorspace"));

TEST(Kernels, CacheSensitiveKernelsShowIpcGap) {
  // mcf, blowfish and cjpeg are the paper's cache-hostile benchmarks:
  // real-memory IPC must sit clearly below perfect-memory IPC.
  for (const char* name : {"mcf", "blowfish", "cjpeg"}) {
    const RunResult real = harness::run_single(name, false, quick_opts());
    const RunResult perfect = harness::run_single(name, true, quick_opts());
    EXPECT_LT(real.ipc(), perfect.ipc() * 0.93) << name;
  }
}

TEST(Kernels, CacheInsensitiveKernelsBarelyMove) {
  for (const char* name : {"gsmencode", "g721encode"}) {
    const RunResult real = harness::run_single(name, false, quick_opts());
    const RunResult perfect = harness::run_single(name, true, quick_opts());
    EXPECT_GT(real.ipc(), perfect.ipc() * 0.85) << name;
  }
}

TEST(Kernels, DeterministicAcrossRuns) {
  const RunResult a = harness::run_single("djpeg", true, quick_opts());
  const RunResult b = harness::run_single("djpeg", true, quick_opts());
  EXPECT_EQ(a.sim.cycles, b.sim.cycles);
  EXPECT_EQ(a.sim.ops_issued, b.sim.ops_issued);
  EXPECT_EQ(a.instances[0].arch_fingerprint, b.instances[0].arch_fingerprint);
}

TEST(Kernels, IlpClassOrderingHolds) {
  const double low = harness::run_single("gsmencode", true, quick_opts()).ipc();
  const double med =
      harness::run_single("g721encode", true, quick_opts()).ipc();
  const double high = harness::run_single("idct", true, quick_opts()).ipc();
  EXPECT_LT(low, med);
  EXPECT_LT(med, high);
}

}  // namespace
}  // namespace vexsim::wl
