// Shared helpers for the vexsim test suite.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/thread_context.hpp"
#include "isa/config.hpp"
#include "isa/program.hpp"
#include "sim/simulator.hpp"

namespace vexsim::test {

inline std::shared_ptr<const Program> finalize(Program prog) {
  prog.finalize();
  return std::make_shared<const Program>(std::move(prog));
}

// A small machine for the paper's worked examples: `clusters` × `issue`
// where issue slots are the only scarce resource ("we assume that number of
// issue slots is the only critical resource", Section III).
inline MachineConfig example_machine(int clusters, int issue, int threads,
                                     Technique t) {
  MachineConfig cfg;
  cfg.clusters = clusters;
  cfg.cluster.issue_slots = issue;
  cfg.cluster.alus = issue;
  cfg.cluster.muls = issue;
  cfg.cluster.mem_units = issue;
  cfg.cluster.branch_units = 1;
  cfg.branch_on_cluster0_only = false;
  cfg.hw_threads = threads;
  cfg.technique = t;
  cfg.cluster_renaming = false;  // the figures assume identity placement
  cfg.icache.perfect = true;
  cfg.dcache.perfect = true;
  cfg.validate();
  return cfg;
}

// Per-cycle packet summary: ops issued per (thread, cluster), e.g.
// {{0,0}: 2, {1,1}: 2} for "thread 0 issued 2 ops on cluster 0, …".
using PacketShape = std::map<std::pair<int, int>, int>;

inline PacketShape shape_of(const ExecPacket& packet) {
  PacketShape shape;
  for (const SelectedOp& sel : packet.ops)
    ++shape[{sel.hw_slot, sel.physical_cluster}];
  return shape;
}

// Runs the machine until all threads halt, recording each cycle's shape.
inline std::vector<PacketShape> run_and_trace(Simulator& sim,
                                              std::uint64_t max_cycles = 100) {
  std::vector<PacketShape> trace;
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    bool live = false;
    for (int s = 0; s < sim.num_slots(); ++s)
      if (sim.slot(s) != nullptr && sim.slot(s)->state == RunState::kReady)
        live = true;
    if (!live) break;
    sim.step();
    trace.push_back(shape_of(sim.last_packet()));
  }
  return trace;
}

}  // namespace vexsim::test
