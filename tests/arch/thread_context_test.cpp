#include "arch/thread_context.hpp"

#include <gtest/gtest.h>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

std::shared_ptr<const Program> tiny_program() {
  Program p = assemble(
      "c0 movi r1 = 7\n"
      "c0 halt\n",
      "tiny");
  p.add_data_words(0x2000, {11, 22});
  p.finalize();
  return std::make_shared<const Program>(std::move(p));
}

TEST(ThreadContext, LoadsDataSegmentsOnConstruction) {
  ThreadContext ctx(0, tiny_program());
  EXPECT_EQ(ctx.mem.peek_u32(0x2000), 11u);
  EXPECT_EQ(ctx.mem.peek_u32(0x2004), 22u);
  EXPECT_EQ(ctx.pc, 0u);
  EXPECT_EQ(ctx.state, RunState::kReady);
  EXPECT_EQ(ctx.respawns, 0u);
}

TEST(ThreadContext, RespawnRestoresInitialState) {
  ThreadContext ctx(0, tiny_program());
  ctx.regs.set_gpr(0, 1, 99);
  ASSERT_TRUE(ctx.mem.store(0x2000, 4, 777));
  ctx.pc = 1;
  ctx.state = RunState::kHalted;
  ctx.total_instructions = 50;
  ctx.respawn();
  EXPECT_EQ(ctx.pc, 0u);
  EXPECT_EQ(ctx.state, RunState::kReady);
  EXPECT_EQ(ctx.regs.gpr(0, 1), 0u);
  EXPECT_EQ(ctx.mem.peek_u32(0x2000), 11u);
  EXPECT_EQ(ctx.total_instructions, 50u);  // cumulative across respawns
  EXPECT_EQ(ctx.respawns, 1u);
}

TEST(ThreadContext, RequiresFinalizedProgram) {
  auto p = std::make_shared<Program>();
  p->name = "unfinalized";
  p->code.push_back(VliwInstruction{});
  EXPECT_THROW(ThreadContext(0, p), CheckError);
}

TEST(ThreadContext, ArchFingerprintCoversRegsAndMemory) {
  ThreadContext a(0, tiny_program());
  ThreadContext b(1, tiny_program());
  EXPECT_EQ(a.arch_fingerprint(4), b.arch_fingerprint(4));
  a.regs.set_gpr(1, 2, 3);
  EXPECT_NE(a.arch_fingerprint(4), b.arch_fingerprint(4));
  b.regs.set_gpr(1, 2, 3);
  EXPECT_EQ(a.arch_fingerprint(4), b.arch_fingerprint(4));
  ASSERT_TRUE(a.mem.store(0x3000, 4, 1));
  EXPECT_NE(a.arch_fingerprint(4), b.arch_fingerprint(4));
}

TEST(ThreadContext, IssueProgressMask) {
  IssueProgress iss;
  EXPECT_EQ(iss.pending_cluster_mask(), 0u);
  iss.pending_ops[0] = 0b11;
  iss.pending_ops[3] = 0b1;
  EXPECT_EQ(iss.pending_cluster_mask(), 0b1001u);
}

}  // namespace
}  // namespace vexsim
