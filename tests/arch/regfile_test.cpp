#include "arch/regfile.hpp"

#include <gtest/gtest.h>

namespace vexsim {
namespace {

TEST(RegFile, StartsZero) {
  const RegFile rf;
  EXPECT_EQ(rf.gpr(0, 5), 0u);
  EXPECT_FALSE(rf.breg(3, 7));
}

TEST(RegFile, WriteRead) {
  RegFile rf;
  rf.set_gpr(1, 10, 42);
  EXPECT_EQ(rf.gpr(1, 10), 42u);
  EXPECT_EQ(rf.gpr(0, 10), 0u);  // clusters are separate files
  rf.set_breg(2, 3, true);
  EXPECT_TRUE(rf.breg(2, 3));
  EXPECT_FALSE(rf.breg(2, 2));
}

TEST(RegFile, Register0HardwiredToZero) {
  RegFile rf;
  rf.set_gpr(0, 0, 123);
  EXPECT_EQ(rf.gpr(0, 0), 0u);
  rf.set_gpr(3, 0, 123);
  EXPECT_EQ(rf.gpr(3, 0), 0u);
}

TEST(RegFile, ClustersIndependent) {
  RegFile rf;
  for (int c = 0; c < 4; ++c) rf.set_gpr(c, 1, static_cast<std::uint32_t>(c + 1));
  for (int c = 0; c < 4; ++c)
    EXPECT_EQ(rf.gpr(c, 1), static_cast<std::uint32_t>(c + 1));
}

TEST(RegFile, ClearResets) {
  RegFile rf;
  rf.set_gpr(2, 7, 9);
  rf.set_breg(1, 1, true);
  rf.clear();
  EXPECT_EQ(rf.gpr(2, 7), 0u);
  EXPECT_FALSE(rf.breg(1, 1));
}

TEST(RegFile, FingerprintSensitivity) {
  RegFile a, b;
  EXPECT_EQ(a.fingerprint(4), b.fingerprint(4));
  a.set_gpr(0, 1, 5);
  EXPECT_NE(a.fingerprint(4), b.fingerprint(4));
  b.set_gpr(0, 1, 5);
  EXPECT_EQ(a.fingerprint(4), b.fingerprint(4));
  // Breg changes are visible too.
  a.set_breg(3, 0, true);
  EXPECT_NE(a.fingerprint(4), b.fingerprint(4));
}

TEST(RegFile, FingerprintScopedToClusterCount) {
  RegFile a, b;
  a.set_gpr(3, 1, 77);
  EXPECT_EQ(a.fingerprint(2), b.fingerprint(2));  // cluster 3 out of scope
  EXPECT_NE(a.fingerprint(4), b.fingerprint(4));
}

}  // namespace
}  // namespace vexsim
