// Figure 6 of the paper: cluster-level split-issue with cluster-level
// merging (CCSI) on a 2-cluster, 3-issue machine.
//
// Reconstructed pairs with the figure's structure:
//   T0: Ins0 = c0:{add,ld}            Ins1 = c0:{shl,sub}, c1:{mpy,xor}
//   T1: Ins0 = c0:{mpy,shl}, c1:{sub,st} Ins1 = c1:{mov,add}
//
// Without split-issue (CSMT) execution takes 4 cycles; CCSI reduces it to 3
// by issuing T1's cluster-1 bundle with T0's Ins0 in cycle 0, swapping
// cluster ownership in cycle 1, and merging both Ins1s in cycle 2.
#include <gtest/gtest.h>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

using test::PacketShape;

const char* kT0 =
    "c0 add r1 = r2, r3 ; c0 ldw r4 = 0x200[r0]\n"
    "c0 shl r5 = r6, 1 ; c0 sub r7 = r8, r9 ; "
    "c1 mpyl r1 = r2, r3 ; c1 xor r4 = r5, r6\n";

const char* kT1 =
    "c0 mpyl r1 = r2, r3 ; c0 shl r4 = r5, 2 ; "
    "c1 sub r6 = r7, r8 ; c1 stw 0x200[r0] = r1\n"
    "c1 mov r2 = r3 ; c1 add r4 = r5, r6\n";

std::vector<PacketShape> run(Technique t) {
  const MachineConfig cfg = test::example_machine(2, 3, 2, t);
  Simulator sim(cfg);
  static thread_local std::unique_ptr<ThreadContext> c0, c1;
  c0 = std::make_unique<ThreadContext>(0, test::finalize(assemble(kT0, "t0")));
  c1 = std::make_unique<ThreadContext>(1, test::finalize(assemble(kT1, "t1")));
  sim.attach(0, c0.get());
  sim.attach(1, c1.get());
  return test::run_and_trace(sim);
}

TEST(Figure6, CsmtTakesFourCycles) {
  const auto trace = run(Technique::csmt());
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0], (PacketShape{{{0, 0}, 2}}));
  EXPECT_EQ(trace[1], (PacketShape{{{1, 0}, 2}, {{1, 1}, 2}}));
  EXPECT_EQ(trace[2], (PacketShape{{{0, 0}, 2}, {{0, 1}, 2}}));
  EXPECT_EQ(trace[3], (PacketShape{{{1, 1}, 2}}));
}

TEST(Figure6, CcsiTakesThreeCycles) {
  const auto trace = run(Technique::ccsi(CommPolicy::kNoSplit));
  ASSERT_EQ(trace.size(), 3u);
  // Cycle 0: T0 owns cluster 0; T1's cluster-1 bundle joins.
  EXPECT_EQ(trace[0], (PacketShape{{{0, 0}, 2}, {{1, 1}, 2}}));
  // Cycle 1: T1 (priority) finishes on cluster 0; T0's Ins1 takes cluster 1.
  EXPECT_EQ(trace[1], (PacketShape{{{1, 0}, 2}, {{0, 1}, 2}}));
  // Cycle 2: T0 finishes on cluster 0; T1's Ins1 merges on cluster 1.
  EXPECT_EQ(trace[2], (PacketShape{{{0, 0}, 2}, {{1, 1}, 2}}));
}

TEST(Figure6, ClusterOwnershipIsExclusive) {
  // Under cluster-level merging a physical cluster never mixes threads in
  // one cycle.
  const MachineConfig cfg =
      test::example_machine(2, 3, 2, Technique::ccsi(CommPolicy::kNoSplit));
  Simulator sim(cfg);
  ThreadContext c0(0, test::finalize(assemble(kT0, "t0")));
  ThreadContext c1(1, test::finalize(assemble(kT1, "t1")));
  sim.attach(0, &c0);
  sim.attach(1, &c1);
  for (int i = 0; i < 10; ++i) {
    sim.step();
    std::map<int, int> cluster_owner;
    for (const SelectedOp& sel : sim.last_packet().ops) {
      const auto [it, inserted] =
          cluster_owner.emplace(sel.physical_cluster, sel.hw_slot);
      EXPECT_EQ(it->second, sel.hw_slot)
          << "cluster " << int(sel.physical_cluster) << " shared at cycle "
          << sim.cycle();
    }
  }
}

TEST(Figure6, LastPartSignalTiming) {
  // T1's Ins0 issues its last part (cluster 0) in cycle 1 — that is when
  // its buffered results drain; instructions retired confirms completion.
  const MachineConfig cfg =
      test::example_machine(2, 3, 2, Technique::ccsi(CommPolicy::kNoSplit));
  Simulator sim(cfg);
  ThreadContext c0(0, test::finalize(assemble(kT0, "t0")));
  ThreadContext c1(1, test::finalize(assemble(kT1, "t1")));
  sim.attach(0, &c0);
  sim.attach(1, &c1);
  sim.step();
  EXPECT_EQ(c0.counters.instructions, 1u);  // T0 Ins0 complete
  EXPECT_EQ(c1.counters.instructions, 0u);  // T1 Ins0 still split
  EXPECT_FALSE(c1.rf_buffer.empty() && c1.store_buffer.empty())
      << "T1's split part should be buffered";
  sim.step();
  EXPECT_EQ(c1.counters.instructions, 1u);  // last part issued
  EXPECT_TRUE(c1.rf_buffer.empty());
  EXPECT_TRUE(c1.store_buffer.empty());
}

}  // namespace
}  // namespace vexsim
