// Cluster renaming (Section IV): static rotation of each thread's logical
// clusters onto physical clusters to reduce bias on heavily-used clusters.
#include <gtest/gtest.h>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

// Both threads' code uses logical cluster 0 only (the compiler's favourite),
// which is the exact bias renaming exists to fix.
const char* kCluster0Heavy = "c0 add r1 = r2, r3 ; c0 sub r4 = r5, r6\n";

TEST(Renaming, CsmtMergesRotatedThreads) {
  MachineConfig cfg = test::example_machine(4, 2, 2, Technique::csmt());
  cfg.cluster_renaming = true;
  Simulator sim(cfg);
  ThreadContext c0(0, test::finalize(assemble(kCluster0Heavy, "t0")));
  ThreadContext c1(1, test::finalize(assemble(kCluster0Heavy, "t1")));
  sim.attach(0, &c0);
  sim.attach(1, &c1);
  sim.step();
  // Thread 1 rotates by 1 (thread i rotated by i): no physical conflict for
  // single-cluster instructions.
  const auto shape = test::shape_of(sim.last_packet());
  EXPECT_EQ(shape, (test::PacketShape{{{0, 0}, 2}, {{1, 1}, 2}}));
}

TEST(Renaming, WithoutRenamingSameClusterConflicts) {
  MachineConfig cfg = test::example_machine(4, 2, 2, Technique::csmt());
  cfg.cluster_renaming = false;
  Simulator sim(cfg);
  ThreadContext c0(0, test::finalize(assemble(kCluster0Heavy, "t0")));
  ThreadContext c1(1, test::finalize(assemble(kCluster0Heavy, "t1")));
  sim.attach(0, &c0);
  sim.attach(1, &c1);
  sim.step();
  const auto shape = test::shape_of(sim.last_packet());
  EXPECT_EQ(shape, (test::PacketShape{{{0, 0}, 2}}));  // thread 1 blocked
}

TEST(Renaming, FunctionalStateUsesLogicalClusters) {
  // Renaming is a resource-mapping trick: thread 1's r-registers live in its
  // own logical cluster 0 file regardless of the physical cluster used.
  MachineConfig cfg = test::example_machine(4, 2, 2, Technique::csmt());
  cfg.cluster_renaming = true;
  Simulator sim(cfg);
  ThreadContext c0(0, test::finalize(assemble("c0 movi r1 = 5\n", "t0")));
  ThreadContext c1(1, test::finalize(assemble("c0 movi r1 = 9\n", "t1")));
  sim.attach(0, &c0);
  sim.attach(1, &c1);
  sim.step();
  sim.step();  // writes commit one cycle after issue
  EXPECT_EQ(c0.regs.gpr(0, 1), 5u);
  EXPECT_EQ(c1.regs.gpr(0, 1), 9u);  // logical cluster 0, not physical 2
  EXPECT_EQ(c1.regs.gpr(2, 1), 0u);
}

TEST(Renaming, FourThreadsFullRotation) {
  MachineConfig cfg = test::example_machine(4, 2, 4, Technique::csmt());
  cfg.cluster_renaming = true;
  Simulator sim(cfg);
  std::vector<std::unique_ptr<ThreadContext>> ctxs;
  for (int i = 0; i < 4; ++i) {
    ctxs.push_back(std::make_unique<ThreadContext>(
        i, test::finalize(assemble(kCluster0Heavy, "t"))));
    sim.attach(i, ctxs.back().get());
  }
  sim.step();
  // All four threads issue in the same cycle, one per physical cluster.
  const auto shape = test::shape_of(sim.last_packet());
  EXPECT_EQ(shape, (test::PacketShape{
                       {{0, 0}, 2}, {{1, 1}, 2}, {{2, 2}, 2}, {{3, 3}, 2}}));
}

TEST(Renaming, MemoryPortsFollowPhysicalClusters) {
  // Two threads with a store on logical cluster 0: renaming sends them to
  // different physical memory units, so both issue in one cycle even with
  // one memory port per cluster.
  MachineConfig cfg = test::example_machine(4, 2, 2, Technique::smt());
  cfg.cluster.mem_units = 1;
  cfg.cluster_renaming = true;
  Simulator sim(cfg);
  const char* store_prog = "c0 stw 0x200[r0] = r1\n";
  ThreadContext c0(0, test::finalize(assemble(store_prog, "t0")));
  ThreadContext c1(1, test::finalize(assemble(store_prog, "t1")));
  sim.attach(0, &c0);
  sim.attach(1, &c1);
  sim.step();
  EXPECT_EQ(sim.last_packet().op_count(), 2);
}

}  // namespace
}  // namespace vexsim
