// Operation-level split-issue (OOSI) specifics: per-operation merging into
// free FU slots, the amalgamated-instruction in-order constraint, and FU
// class limits.
#include <gtest/gtest.h>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

TEST(Oosi, SingleOperationSqueezesIntoFreeSlot) {
  // T0 leaves one slot free on cluster 0; OOSI places one of T1's two ops
  // there, COSI cannot (bundle is all-or-nothing).
  const char* t0 = "c0 add r1 = r2, r3 ; c0 sub r4 = r5, r6\n";
  const char* t1 = "c0 or r1 = r2, r3 ; c0 xor r4 = r5, r6\n";
  for (auto [tech, expect_t1_first_cycle] :
       {std::pair{Technique::oosi(CommPolicy::kNoSplit), 1},
        std::pair{Technique::cosi(CommPolicy::kNoSplit), 0}}) {
    const MachineConfig cfg = test::example_machine(2, 3, 2, tech);
    Simulator sim(cfg);
    ThreadContext c0(0, test::finalize(assemble(t0, "t0")));
    ThreadContext c1(1, test::finalize(assemble(t1, "t1")));
    sim.attach(0, &c0);
    sim.attach(1, &c1);
    sim.step();
    int t1_ops = 0;
    for (const SelectedOp& sel : sim.last_packet().ops)
      if (sel.hw_slot == 1) ++t1_ops;
    EXPECT_EQ(t1_ops, expect_t1_first_cycle) << tech.name();
  }
}

TEST(Oosi, InOrderAcrossInstructions) {
  // T1's second instruction must not issue any op until the first is fully
  // issued, even when slots are free for it.
  const char* t0 = "c0 add r1 = r2, r3 ; c0 sub r4 = r5, r6\n";
  const char* t1 =
      "c0 or r1 = r2, r3 ; c0 xor r4 = r5, r6\n"
      "c1 and r7 = r8, r9\n";  // cluster 1 is totally free in cycle 1
  const MachineConfig cfg =
      test::example_machine(2, 3, 2, Technique::oosi(CommPolicy::kNoSplit));
  Simulator sim(cfg);
  ThreadContext c0(0, test::finalize(assemble(t0, "t0")));
  ThreadContext c1(1, test::finalize(assemble(t1, "t1")));
  sim.attach(0, &c0);
  sim.attach(1, &c1);
  sim.step();
  // Cycle 1: T1 issued exactly one op (into c0's third slot), and nothing
  // from its second instruction despite cluster 1 being free.
  for (const SelectedOp& sel : sim.last_packet().ops) {
    if (sel.hw_slot == 1) {
      EXPECT_EQ(sel.physical_cluster, 0);
    }
  }
  EXPECT_EQ(c1.counters.instructions, 0u);
  sim.step();  // T1 priority: finishes instruction 0
  EXPECT_EQ(c1.counters.instructions, 1u);
}

TEST(Oosi, FuClassLimitsRespectedPerOperation) {
  // Cluster has 2 multipliers. T0 uses both; T1's mpy must wait but its alu
  // op may go.
  MachineConfig cfg =
      test::example_machine(1, 4, 2, Technique::oosi(CommPolicy::kNoSplit));
  cfg.cluster.muls = 2;
  Simulator sim(cfg);
  const char* t0 = "c0 mpyl r1 = r2, r3 ; c0 mpyl r4 = r5, r6\n";
  const char* t1 = "c0 mpyl r1 = r2, r3 ; c0 add r4 = r5, r6\n";
  ThreadContext c0(0, test::finalize(assemble(t0, "t0")));
  ThreadContext c1(1, test::finalize(assemble(t1, "t1")));
  sim.attach(0, &c0);
  sim.attach(1, &c1);
  sim.step();
  int t1_mul = 0, t1_alu = 0;
  for (const SelectedOp& sel : sim.last_packet().ops) {
    if (sel.hw_slot != 1) continue;
    (sel.op.cls() == OpClass::kMul ? t1_mul : t1_alu)++;
  }
  EXPECT_EQ(t1_mul, 0);
  EXPECT_EQ(t1_alu, 1);
}

TEST(Oosi, SplitPartsBufferUntilLastPart) {
  // T1's first op issues a cycle before its instruction completes: its
  // result must not be architecturally visible until the last part.
  MachineConfig cfg =
      test::example_machine(1, 3, 2, Technique::oosi(CommPolicy::kNoSplit));
  Simulator sim(cfg);
  const char* t0 = "c0 add r1 = r2, r3 ; c0 sub r4 = r5, r6\n";
  const char* t1 = "c0 movi r1 = 42 ; c0 movi r2 = 43\n";
  ThreadContext c0(0, test::finalize(assemble(t0, "t0")));
  ThreadContext c1(1, test::finalize(assemble(t1, "t1")));
  sim.attach(0, &c0);
  sim.attach(1, &c1);
  sim.step();  // T1 issues exactly one movi (3rd slot)
  EXPECT_EQ(c1.counters.instructions, 0u);
  sim.step();  // completes; commit happens via the delay buffer
  EXPECT_EQ(c1.counters.instructions, 1u);
  sim.step();  // drain pending writes
  EXPECT_EQ(c1.regs.gpr(0, 1), 42u);
  EXPECT_EQ(c1.regs.gpr(0, 2), 43u);
  EXPECT_GE(c1.counters.split_instructions, 1u);
}

TEST(Oosi, RequiresOperationMerging) {
  MachineConfig cfg =
      test::example_machine(2, 3, 2, Technique::oosi(CommPolicy::kNoSplit));
  cfg.technique.merge = MergeLevel::kCluster;
  EXPECT_THROW(cfg.validate(), CheckError);
}

}  // namespace
}  // namespace vexsim
