// Figure 5 of the paper: operation-level merging with cluster-level (COSI)
// and operation-level (OOSI) split-issue on a 2-cluster, 3-issue-per-cluster
// machine, with rotating thread priority.
//
// Reconstructed instruction pairs with the figure's structure:
//   T0: Ins0 = c0:{add,sub}, c1:{ld}     Ins1 = c0:{st,shr}, c1:{and}
//   T1: Ins0 = c0:{mpy,shl}, c1:{add,xor} Ins1 = c1:{st,ld,xor}
//
// Verified behaviour (hand-scheduled, matching the paper's narrative):
//   - without split-issue (plain SMT) execution takes 4 cycles;
//   - with COSI or OOSI it takes 3 cycles;
//   - COSI cycle 0 issues T1's cluster-1 bundle alongside T0's Ins0 but
//     cannot split {mpy,shl}; OOSI additionally issues the mpy alone.
#include <gtest/gtest.h>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

using test::PacketShape;

const char* kT0 =
    "c0 add r1 = r2, r3 ; c0 sub r4 = r5, r6 ; c1 ldw r7 = 0x200[r0]\n"
    "c0 stw 0x200[r0] = r1 ; c0 shr r2 = r3, 2 ; c1 and r4 = r5, r6\n";

const char* kT1 =
    "c0 mpyl r1 = r2, r3 ; c0 shl r4 = r5, 1 ; "
    "c1 add r6 = r7, r8 ; c1 xor r2 = r3, r4\n"
    "c1 stw 0x200[r0] = r1 ; c1 ldw r5 = 0x300[r0] ; c1 xor r6 = r7, r8\n";

std::vector<PacketShape> run(Technique t) {
  const MachineConfig cfg = test::example_machine(2, 3, 2, t);
  Simulator sim(cfg);
  // Contexts must outlive the trace; keep them static per call via locals.
  static thread_local std::unique_ptr<ThreadContext> c0, c1;
  c0 = std::make_unique<ThreadContext>(0, test::finalize(assemble(kT0, "t0")));
  c1 = std::make_unique<ThreadContext>(1, test::finalize(assemble(kT1, "t1")));
  sim.attach(0, c0.get());
  sim.attach(1, c1.get());
  return test::run_and_trace(sim);
}

TEST(Figure5, WithoutSplitIssueTakesFourCycles) {
  const auto trace = run(Technique::smt());
  ASSERT_EQ(trace.size(), 4u);
  // Each cycle carries exactly one thread's instruction.
  EXPECT_EQ(trace[0], (PacketShape{{{0, 0}, 2}, {{0, 1}, 1}}));
  EXPECT_EQ(trace[1], (PacketShape{{{1, 0}, 2}, {{1, 1}, 2}}));
  EXPECT_EQ(trace[2], (PacketShape{{{0, 0}, 2}, {{0, 1}, 1}}));
  EXPECT_EQ(trace[3], (PacketShape{{{1, 1}, 3}}));
}

TEST(Figure5, CosiTakesThreeCycles) {
  const auto trace = run(Technique::cosi(CommPolicy::kNoSplit));
  ASSERT_EQ(trace.size(), 3u);
  // Cycle 0: T0's whole Ins0 + T1's cluster-1 bundle (cluster-0 bundle
  // {mpy,shl} cannot split and does not fit).
  EXPECT_EQ(trace[0],
            (PacketShape{{{0, 0}, 2}, {{0, 1}, 1}, {{1, 1}, 2}}));
  // Cycle 1: T1 has priority — remaining {mpy,shl}; T0 starts Ins1 but only
  // its cluster-1 bundle fits.
  EXPECT_EQ(trace[1], (PacketShape{{{1, 0}, 2}, {{0, 1}, 1}}));
  // Cycle 2: T0 finishes Ins1 on cluster 0; T1's Ins1 merges on cluster 1.
  EXPECT_EQ(trace[2], (PacketShape{{{0, 0}, 2}, {{1, 1}, 3}}));
}

TEST(Figure5, OosiTakesThreeCycles) {
  const auto trace = run(Technique::oosi(CommPolicy::kNoSplit));
  ASSERT_EQ(trace.size(), 3u);
  // Cycle 0: as COSI, plus T1's mpy squeezes into cluster 0's third slot.
  EXPECT_EQ(trace[0],
            (PacketShape{{{0, 0}, 2}, {{0, 1}, 1}, {{1, 0}, 1}, {{1, 1}, 2}}));
  // Cycle 1: T1 issues the remaining shl; T0's whole Ins1 fits around it.
  EXPECT_EQ(trace[1],
            (PacketShape{{{1, 0}, 1}, {{0, 0}, 2}, {{0, 1}, 1}}));
  // Cycle 2: T1's Ins1.
  EXPECT_EQ(trace[2], (PacketShape{{{1, 1}, 3}}));
}

TEST(Figure5, SplitInstructionsAreCounted) {
  const MachineConfig cfg =
      test::example_machine(2, 3, 2, Technique::cosi(CommPolicy::kNoSplit));
  Simulator sim(cfg);
  ThreadContext c0(0, test::finalize(assemble(kT0, "t0")));
  ThreadContext c1(1, test::finalize(assemble(kT1, "t1")));
  sim.attach(0, &c0);
  sim.attach(1, &c1);
  test::run_and_trace(sim);
  // T1's Ins0 split (c1 at cycle 0, c0 at cycle 1); T0's Ins1 split too.
  EXPECT_EQ(sim.stats().split_instructions, 2u);
  EXPECT_EQ(c1.counters.split_instructions, 1u);
  EXPECT_EQ(c0.counters.split_instructions, 1u);
}

TEST(Figure5, OosiNeverWorseThanCosiHere) {
  const auto cosi = run(Technique::cosi(CommPolicy::kNoSplit));
  const auto oosi = run(Technique::oosi(CommPolicy::kNoSplit));
  EXPECT_LE(oosi.size(), cosi.size());
}

}  // namespace
}  // namespace vexsim
