// Figure 1 of the paper: instruction merging in SMT vs CSMT on a 4-cluster,
// 2-issue-per-cluster (8-issue) machine.
//
// The extracted figure is not bit-exact, so the three pairs below are
// reconstructed to have exactly the stated properties:
//   Pair I   — conflicts at clusters 0, 1 and 3 at both operation and
//              cluster level: neither SMT nor CSMT can merge;
//   Pair II  — no operation-level conflicts, but the threads share clusters
//              0, 2, 3: SMT merges, CSMT cannot;
//   Pair III — the threads use disjoint clusters ({1,2} vs {0,3}): both
//              merge, and the merged packet is identical for SMT and CSMT.
#include <gtest/gtest.h>

#include <set>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

using test::PacketShape;

struct Pair {
  const char* t0;
  const char* t1;
};

// Reconstructed pairs (see header comment).
const Pair kPairI = {
    "c0 add r1 = r2, r3 ; c1 ldw r4 = 0x200[r0] ; c1 sub r5 = r6, r7 ; "
    "c2 add r8 = r9, r1 ; c3 add r2 = r3, r4 ; c3 sub r5 = r6, r7",
    "c0 mpyl r1 = r2, r3 ; c0 add r4 = r5, r6 ; c1 mov r7 = r8 ; "
    "c3 stw 0x200[r0] = r1"};

const Pair kPairII = {
    "c0 add r1 = r2, r3 ; c2 sub r4 = r5, r6 ; c3 stw 0x200[r0] = r1",
    "c0 mpyl r1 = r2, r3 ; c2 ldw r4 = 0x200[r0] ; c3 mov r5 = r6"};

const Pair kPairIII = {
    "c1 shl r1 = r2, 3 ; c1 add r3 = r4, r5 ; c2 mov r6 = r7",
    "c0 shl r1 = r2, 1 ; c0 mov r3 = r4 ; c3 add r5 = r6, r7 ; "
    "c3 mpyl r8 = r9, r1"};

// Runs the pair for one cycle on the given technique and reports how many
// ops each thread issued in the first packet.
std::pair<int, int> first_cycle_ops(const Pair& pair, Technique t) {
  const MachineConfig cfg = test::example_machine(4, 2, 2, t);
  Simulator sim(cfg);
  ThreadContext ctx0(0, test::finalize(assemble(pair.t0, "t0")));
  ThreadContext ctx1(1, test::finalize(assemble(pair.t1, "t1")));
  sim.attach(0, &ctx0);
  sim.attach(1, &ctx1);
  sim.step();
  int t0 = 0, t1 = 0;
  for (const SelectedOp& sel : sim.last_packet().ops)
    (sel.hw_slot == 0 ? t0 : t1)++;
  return {t0, t1};
}

int op_count(const char* text) {
  return assemble(text).code[0].op_count();
}

TEST(Figure1, PairI_NeitherMerges) {
  for (const Technique t : {Technique::smt(), Technique::csmt()}) {
    const auto [t0, t1] = first_cycle_ops(kPairI, t);
    EXPECT_EQ(t0, op_count(kPairI.t0)) << t.name();
    EXPECT_EQ(t1, 0) << t.name();
  }
}

TEST(Figure1, PairII_OnlySmtMerges) {
  const auto [s0, s1] = first_cycle_ops(kPairII, Technique::smt());
  EXPECT_EQ(s0, op_count(kPairII.t0));
  EXPECT_EQ(s1, op_count(kPairII.t1));  // merged

  const auto [c0, c1] = first_cycle_ops(kPairII, Technique::csmt());
  EXPECT_EQ(c0, op_count(kPairII.t0));
  EXPECT_EQ(c1, 0);  // cluster-level conflict at clusters 0, 2, 3
}

TEST(Figure1, PairIII_BothMerge) {
  for (const Technique t : {Technique::smt(), Technique::csmt()}) {
    const auto [t0, t1] = first_cycle_ops(kPairIII, t);
    EXPECT_EQ(t0, op_count(kPairIII.t0)) << t.name();
    EXPECT_EQ(t1, op_count(kPairIII.t1)) << t.name();
  }
}

TEST(Figure1, PairIII_MergedPacketIdenticalAcrossPolicies) {
  // "if both CSMT and SMT can merge a pair of instructions, the final
  // merged instruction is identical for both SMT and CSMT."
  using OpKey = std::tuple<int, int, int>;  // (thread, cluster, opcode)
  auto packet_keys = [](Technique t) {
    const MachineConfig cfg = test::example_machine(4, 2, 2, t);
    Simulator sim(cfg);
    ThreadContext ctx0(0, test::finalize(assemble(kPairIII.t0, "t0")));
    ThreadContext ctx1(1, test::finalize(assemble(kPairIII.t1, "t1")));
    sim.attach(0, &ctx0);
    sim.attach(1, &ctx1);
    sim.step();
    std::multiset<OpKey> keys;
    for (const SelectedOp& sel : sim.last_packet().ops)
      keys.insert({sel.hw_slot, sel.physical_cluster, int(sel.op.opc)});
    return keys;
  };
  EXPECT_EQ(packet_keys(Technique::smt()), packet_keys(Technique::csmt()));
}

TEST(Figure1, PairI_SecondCycleIssuesThread1) {
  const MachineConfig cfg = test::example_machine(4, 2, 2, Technique::smt());
  Simulator sim(cfg);
  ThreadContext ctx0(0, test::finalize(assemble(kPairI.t0, "t0")));
  ThreadContext ctx1(1, test::finalize(assemble(kPairI.t1, "t1")));
  sim.attach(0, &ctx0);
  sim.attach(1, &ctx1);
  sim.step();
  sim.step();
  int t1 = 0;
  for (const SelectedOp& sel : sim.last_packet().ops)
    if (sel.hw_slot == 1) ++t1;
  EXPECT_EQ(t1, op_count(kPairI.t1));
}

}  // namespace
}  // namespace vexsim
