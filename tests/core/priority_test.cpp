// Thread priority rotation (Section VI-A): "A different priority is
// assigned to each selected thread in a round robin way every cycle."
#include <gtest/gtest.h>

#include "support/test_util.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

// Both threads always want the full cluster 0: only the priority thread
// issues each cycle, so the issue pattern exposes the rotation.
const char* conflicting_program(int n) {
  static std::string text;
  text.clear();
  for (int i = 0; i < n; ++i)
    text += "c0 add r1 = r2, r3 ; c0 sub r4 = r5, r6 ; c0 or r7 = r8, r9\n";
  return text.c_str();
}

TEST(Priority, AlternatesBetweenTwoConflictingThreads) {
  const MachineConfig cfg = test::example_machine(1, 3, 2, Technique::csmt());
  Simulator sim(cfg);
  ThreadContext c0(0, test::finalize(assemble(conflicting_program(4), "t0")));
  ThreadContext c1(1, test::finalize(assemble(conflicting_program(4), "t1")));
  sim.attach(0, &c0);
  sim.attach(1, &c1);
  std::vector<int> winner;
  for (int i = 0; i < 8; ++i) {
    sim.step();
    ASSERT_EQ(sim.last_packet().op_count(), 3);
    winner.push_back(sim.last_packet().ops[0].hw_slot);
  }
  EXPECT_EQ(winner, (std::vector<int>{0, 1, 0, 1, 0, 1, 0, 1}));
}

TEST(Priority, FairShareOverFourThreads) {
  const MachineConfig cfg = test::example_machine(1, 3, 4, Technique::csmt());
  Simulator sim(cfg);
  std::vector<std::unique_ptr<ThreadContext>> ctxs;
  for (int i = 0; i < 4; ++i) {
    ctxs.push_back(std::make_unique<ThreadContext>(
        i, test::finalize(assemble(conflicting_program(8), "t"))));
    sim.attach(i, ctxs.back().get());
  }
  std::array<int, 4> issued{};
  for (int i = 0; i < 16; ++i) {
    sim.step();
    if (sim.last_packet().op_count() > 0)
      ++issued[static_cast<std::size_t>(sim.last_packet().ops[0].hw_slot)];
  }
  for (int i = 0; i < 4; ++i) EXPECT_EQ(issued[static_cast<std::size_t>(i)], 4);
}

TEST(Priority, TopThreadAlwaysIssuesInFull) {
  // "Thread T0 is always selected in its entirety because it is the highest
  // priority thread" — whichever thread holds top priority that cycle.
  const MachineConfig cfg =
      test::example_machine(2, 3, 2, Technique::ccsi(CommPolicy::kAlwaysSplit));
  Simulator sim(cfg);
  const char* wide =
      "c0 add r1 = r2, r3 ; c0 sub r4 = r5, r6 ; "
      "c1 or r1 = r2, r3 ; c1 xor r4 = r5, r6\n";
  ThreadContext c0(0, test::finalize(assemble(wide, "t0")));
  ThreadContext c1(1, test::finalize(assemble(wide, "t1")));
  sim.attach(0, &c0);
  sim.attach(1, &c1);
  sim.step();
  // Cycle 1: T0 has priority and issues all 4 ops.
  int t0_ops = 0;
  for (const SelectedOp& sel : sim.last_packet().ops)
    if (sel.hw_slot == 0) ++t0_ops;
  EXPECT_EQ(t0_ops, 4);
  EXPECT_EQ(c0.counters.instructions, 1u);
}

TEST(Priority, LowerPriorityGetsLeftovers) {
  const MachineConfig cfg = test::example_machine(2, 3, 2, Technique::smt());
  Simulator sim(cfg);
  const char* narrow = "c0 add r1 = r2, r3\n";
  const char* narrow2 = "c0 sub r4 = r5, r6\n";
  ThreadContext c0(0, test::finalize(assemble(narrow, "t0")));
  ThreadContext c1(1, test::finalize(assemble(narrow2, "t1")));
  sim.attach(0, &c0);
  sim.attach(1, &c1);
  sim.step();
  EXPECT_EQ(sim.last_packet().op_count(), 2);  // both merged in one cycle
  EXPECT_EQ(sim.stats().multi_thread_cycles, 1u);
}

}  // namespace
}  // namespace vexsim
