#include "core/resources.hpp"

#include <gtest/gtest.h>

namespace vexsim {
namespace {

ClusterResourceConfig paper_cluster() {
  return ClusterResourceConfig{};  // 4 slots, 4 ALU, 2 MUL, 1 LS, 1 BR
}

TEST(Resources, AddClassifiesOps) {
  ResourceUse use;
  use.add(ops::alu(Opcode::kAdd, 0, 1, 2, 3));
  use.add(ops::mpyl(0, 4, 5, 6));
  use.add(ops::load(Opcode::kLdw, 0, 7, 8, 0));
  use.add(ops::br(0, 0, 0));
  use.add(ops::send(0, 1, 0));
  EXPECT_EQ(use.slots(), 5);
  EXPECT_EQ(use.alu(), 1);
  EXPECT_EQ(use.mul(), 1);
  EXPECT_EQ(use.mem(), 1);
  EXPECT_EQ(use.br(), 1);
}

TEST(Resources, FitsWithSlots) {
  ResourceUse used;
  for (int i = 0; i < 3; ++i) used.add(ops::alu(Opcode::kAdd, 0, 1, 2, 3));
  ResourceUse one;
  one.add(ops::alu(Opcode::kSub, 0, 1, 2, 3));
  EXPECT_TRUE(used.fits_with(one, paper_cluster(), 1));
  used.add(ops::alu(Opcode::kOr, 0, 1, 2, 3));
  EXPECT_FALSE(used.fits_with(one, paper_cluster(), 1));  // 5th slot
}

TEST(Resources, MulUnitLimit) {
  ResourceUse used;
  used.add(ops::mpyl(0, 1, 2, 3));
  used.add(ops::mpyl(0, 4, 5, 6));
  ResourceUse mul;
  mul.add(ops::mpyl(0, 7, 8, 9));
  EXPECT_FALSE(used.fits_with(mul, paper_cluster(), 1));  // 3rd multiplier
  ResourceUse alu;
  alu.add(ops::alu(Opcode::kAdd, 0, 1, 2, 3));
  EXPECT_TRUE(used.fits_with(alu, paper_cluster(), 1));
}

TEST(Resources, MemUnitLimit) {
  ResourceUse used;
  used.add(ops::load(Opcode::kLdw, 0, 1, 2, 0));
  ResourceUse st;
  st.add(ops::store(Opcode::kStw, 0, 3, 0, 4));
  EXPECT_FALSE(used.fits_with(st, paper_cluster(), 1));  // 1 LS unit
}

TEST(Resources, BranchUnitLimit) {
  ResourceUse used;
  used.add(ops::br(0, 0, 0));
  ResourceUse br;
  br.add(ops::jump(0, 0));
  EXPECT_FALSE(used.fits_with(br, paper_cluster(), 1));
  EXPECT_TRUE(used.fits_with(ResourceUse{}, paper_cluster(), 1));
  // A cluster without a branch unit rejects any branch.
  ResourceUse empty;
  EXPECT_FALSE(empty.fits_with(br, paper_cluster(), 0));
}

TEST(Resources, CommOpsOnlyUseSlots) {
  ResourceUse use;
  use.add(ops::send(0, 1, 0));
  use.add(ops::recv(0, 2, 0));
  EXPECT_EQ(use.slots(), 2);
  EXPECT_EQ(use.alu() + use.mul() + use.mem() + use.br(), 0);
}

TEST(Resources, BundleUseMask) {
  Bundle bundle;
  bundle.push_back(ops::alu(Opcode::kAdd, 0, 1, 2, 3));
  bundle.push_back(ops::mpyl(0, 4, 5, 6));
  bundle.push_back(ops::load(Opcode::kLdw, 0, 7, 8, 0));
  const ResourceUse all = bundle_use(bundle, 0b111);
  EXPECT_EQ(all.slots(), 3);
  const ResourceUse first_two = bundle_use(bundle, 0b011);
  EXPECT_EQ(first_two.slots(), 2);
  EXPECT_EQ(first_two.mem(), 0);
  const ResourceUse none = bundle_use(bundle, 0);
  EXPECT_TRUE(none.empty());
}

TEST(Resources, ClusterCollisionPrimitive) {
  EXPECT_TRUE(cluster_collision(0b0101, 0b0100));
  EXPECT_FALSE(cluster_collision(0b0101, 0b1010));
  EXPECT_FALSE(cluster_collision(0, 0b1111));
}

TEST(Resources, OperationCollisionPrimitive) {
  ResourceUse a;
  a.add(ops::alu(Opcode::kAdd, 0, 1, 2, 3));
  a.add(ops::alu(Opcode::kSub, 0, 1, 2, 3));
  ResourceUse b;
  b.add(ops::alu(Opcode::kOr, 0, 1, 2, 3));
  b.add(ops::alu(Opcode::kAnd, 0, 1, 2, 3));
  const ClusterResourceConfig cl = paper_cluster();
  EXPECT_FALSE(operation_collision(a, b, cl, 1));  // 4 ALU ops fit
  ResourceUse c = b;
  c.add(ops::alu(Opcode::kXor, 0, 1, 2, 3));
  EXPECT_TRUE(operation_collision(a, c, cl, 1));  // 5 slots
}

}  // namespace
}  // namespace vexsim
