#include "stats/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "util/check.hpp"

namespace vexsim {
namespace {

TEST(Json, ScalarsAndInsertionOrder) {
  Json j = Json::object();
  j.set("b", 1).set("a", 2.5).set("s", "hi").set("t", true).set("n", Json());
  EXPECT_EQ(j.dump(),
            "{\n"
            "  \"b\": 1,\n"
            "  \"a\": 2.5,\n"
            "  \"s\": \"hi\",\n"
            "  \"t\": true,\n"
            "  \"n\": null\n"
            "}\n");
}

TEST(Json, SetOverwritesInPlace) {
  Json j = Json::object();
  j.set("x", 1).set("y", 2).set("x", 3);
  EXPECT_EQ(j.dump(), "{\n  \"x\": 3,\n  \"y\": 2\n}\n");
}

TEST(Json, NestedArraysAndEmpties) {
  Json arr = Json::array();
  arr.push(1).push(Json::object()).push(Json::array());
  Json j = Json::object();
  j.set("points", std::move(arr));
  EXPECT_EQ(j.dump(),
            "{\n"
            "  \"points\": [\n"
            "    1,\n"
            "    {},\n"
            "    []\n"
            "  ]\n"
            "}\n");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(Json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, DoubleFormattingRoundTripsAndIsShortest) {
  EXPECT_EQ(Json(0.5).dump(), "0.5\n");
  EXPECT_EQ(Json(1.0).dump(), "1\n");
  // A value needing full precision must survive a parse round trip.
  const double v = 0.1 + 0.2;
  const std::string text = Json(v).dump();
  EXPECT_EQ(std::stod(text), v);
}

TEST(Json, LargeIntegersAreExact) {
  const std::uint64_t big = ~0ull;
  EXPECT_EQ(Json(big).dump(), "18446744073709551615\n");
  EXPECT_EQ(Json(std::int64_t{-42}).dump(), "-42\n");
}

TEST(Json, TypeMisuseThrows) {
  Json scalar(1);
  EXPECT_THROW(scalar.set("k", 2), CheckError);
  EXPECT_THROW(scalar.push(2), CheckError);
  Json obj = Json::object();
  EXPECT_THROW(obj.push(1), CheckError);
}

TEST(Json, WriteJsonFile) {
  const std::string path =
      testing::TempDir() + "/vexsim_json_test_out.json";
  Json j = Json::object();
  j.set("k", 7);
  write_json_file(path, j);
  std::ifstream is(path);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, j.dump());
  std::remove(path.c_str());
  EXPECT_THROW(write_json_file("/nonexistent-dir/x.json", j), CheckError);
}

TEST(Json, NonFiniteDoublesEmitNull) {
  // Invalid-JSON tokens like `nan`/`inf` would break every BENCH_*.json
  // consumer; the writer degrades non-finite metrics to null instead.
  EXPECT_EQ(Json(std::nan("")).dump(), "null\n");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null\n");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null\n");
  Json j = Json::object();
  j.set("ipc", std::nan(""));
  j.set("ok", 1.5);
  EXPECT_EQ(j.dump(), "{\n  \"ipc\": null,\n  \"ok\": 1.5\n}\n");
  // The emitted document stays parseable.
  EXPECT_TRUE(Json::parse(j.dump()).at("ipc").is_null());
}

TEST(Json, ParseRoundTripsDumpedDocuments) {
  Json doc = Json::object();
  Json arr = Json::array();
  arr.push(1).push(std::uint64_t{~0ull}).push(std::int64_t{-7}).push(0.25);
  Json inner = Json::object();
  inner.set("name", "a\"b\nc").set("flag", true).set("none", Json());
  arr.push(std::move(inner));
  doc.set("points", std::move(arr)).set("experiment", "x");
  const std::string text = doc.dump();
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(Json, ParseScalarAccessors) {
  const Json doc = Json::parse(
      "{\"u\": 18446744073709551615, \"i\": -42, \"d\": 0.5,"
      " \"s\": \"hi\", \"b\": true, \"n\": null}");
  EXPECT_EQ(doc.at("u").as_uint64(), ~0ull);
  EXPECT_EQ(doc.at("i").as_int64(), -42);
  EXPECT_DOUBLE_EQ(doc.at("d").as_double(), 0.5);
  EXPECT_EQ(doc.at("s").as_string(), "hi");
  EXPECT_TRUE(doc.at("b").as_bool());
  EXPECT_TRUE(doc.at("n").is_null());
  // Small non-negative integers are reachable through either signedness.
  const Json small = Json::parse("{\"v\": 7}");
  EXPECT_EQ(small.at("v").as_int64(), 7);
  EXPECT_EQ(small.at("v").as_uint64(), 7u);
  // find() distinguishes absent from null.
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_NE(doc.find("n"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), CheckError);
}

TEST(Json, ParseArraysAndEscapes) {
  const Json arr = Json::parse("[1, [2, 3], {\"k\": \"a\\u0001\\tb\"}]");
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.at(std::size_t{0}).as_int64(), 1);
  EXPECT_EQ(arr.at(std::size_t{1}).at(std::size_t{1}).as_int64(), 3);
  EXPECT_EQ(&arr.at(std::size_t{2}).at("k"), arr.at(std::size_t{2}).find("k"));
  EXPECT_EQ(arr.at(std::size_t{2}).at("k").as_string(),
            std::string("a\x01\tb"));
  EXPECT_THROW((void)arr.at(std::size_t{3}), CheckError);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse(""), CheckError);
  EXPECT_THROW((void)Json::parse("{"), CheckError);
  EXPECT_THROW((void)Json::parse("{\"a\": 1,}"), CheckError);
  EXPECT_THROW((void)Json::parse("[1 2]"), CheckError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), CheckError);
  EXPECT_THROW((void)Json::parse("\"bad\\q\""), CheckError);
  EXPECT_THROW((void)Json::parse("nul"), CheckError);
  EXPECT_THROW((void)Json::parse("1 trailing"), CheckError);
  EXPECT_THROW((void)Json::parse("1..5"), CheckError);
  // 2^64 and -2^63-1 overflow their integer representations, and 1e999
  // overflows double; but a subnormal (strtod underflow) is legitimate
  // writer output and must round-trip.
  EXPECT_THROW((void)Json::parse("18446744073709551616"), CheckError);
  EXPECT_THROW((void)Json::parse("-9223372036854775809"), CheckError);
  EXPECT_THROW((void)Json::parse("1e999"), CheckError);
  const double denorm = 5e-324;
  EXPECT_EQ(Json::parse(Json(denorm).dump()).as_double(), denorm);
  // Duplicate keys are corruption, not last-wins.
  EXPECT_THROW((void)Json::parse("{\"a\": 1, \"a\": 2}"), CheckError);
}

}  // namespace
}  // namespace vexsim
