#include "stats/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "util/check.hpp"

namespace vexsim {
namespace {

TEST(Json, ScalarsAndInsertionOrder) {
  Json j = Json::object();
  j.set("b", 1).set("a", 2.5).set("s", "hi").set("t", true).set("n", Json());
  EXPECT_EQ(j.dump(),
            "{\n"
            "  \"b\": 1,\n"
            "  \"a\": 2.5,\n"
            "  \"s\": \"hi\",\n"
            "  \"t\": true,\n"
            "  \"n\": null\n"
            "}\n");
}

TEST(Json, SetOverwritesInPlace) {
  Json j = Json::object();
  j.set("x", 1).set("y", 2).set("x", 3);
  EXPECT_EQ(j.dump(), "{\n  \"x\": 3,\n  \"y\": 2\n}\n");
}

TEST(Json, NestedArraysAndEmpties) {
  Json arr = Json::array();
  arr.push(1).push(Json::object()).push(Json::array());
  Json j = Json::object();
  j.set("points", std::move(arr));
  EXPECT_EQ(j.dump(),
            "{\n"
            "  \"points\": [\n"
            "    1,\n"
            "    {},\n"
            "    []\n"
            "  ]\n"
            "}\n");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(Json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, DoubleFormattingRoundTripsAndIsShortest) {
  EXPECT_EQ(Json(0.5).dump(), "0.5\n");
  EXPECT_EQ(Json(1.0).dump(), "1\n");
  // A value needing full precision must survive a parse round trip.
  const double v = 0.1 + 0.2;
  const std::string text = Json(v).dump();
  EXPECT_EQ(std::stod(text), v);
}

TEST(Json, LargeIntegersAreExact) {
  const std::uint64_t big = ~0ull;
  EXPECT_EQ(Json(big).dump(), "18446744073709551615\n");
  EXPECT_EQ(Json(std::int64_t{-42}).dump(), "-42\n");
}

TEST(Json, TypeMisuseThrows) {
  Json scalar(1);
  EXPECT_THROW(scalar.set("k", 2), CheckError);
  EXPECT_THROW(scalar.push(2), CheckError);
  Json obj = Json::object();
  EXPECT_THROW(obj.push(1), CheckError);
}

TEST(Json, WriteJsonFile) {
  const std::string path =
      testing::TempDir() + "/vexsim_json_test_out.json";
  Json j = Json::object();
  j.set("k", 7);
  write_json_file(path, j);
  std::ifstream is(path);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, j.dump());
  std::remove(path.c_str());
  EXPECT_THROW(write_json_file("/nonexistent-dir/x.json", j), CheckError);
}

}  // namespace
}  // namespace vexsim
