#include "stats/table.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace vexsim {
namespace {

TEST(Table, AlignedText) {
  Table t({"bench", "IPCr", "IPCp"});
  t.add_row({"mcf", "0.96", "1.34"});
  t.add_row({"colorspace", "5.47", "8.88"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("bench"), std::string::npos);
  EXPECT_NE(text.find("colorspace"), std::string::npos);
  // Numeric columns right-aligned: "0.96" column width fits "IPCr".
  EXPECT_NE(text.find(" 0.96"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RowWidthChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 1), "2.0");
  EXPECT_EQ(Table::pct(0.061), "6.1%");
  EXPECT_EQ(Table::pct(0.203, 1), "20.3%");
  EXPECT_EQ(Table::pct(-0.05), "-5.0%");
}

TEST(Table, MeanHelper) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Table, SpeedupHelper) {
  EXPECT_NEAR(speedup(1.1, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(speedup(0.9, 1.0), -0.1, 1e-12);
  EXPECT_THROW((void)speedup(1.0, 0.0), CheckError);
}

}  // namespace
}  // namespace vexsim
