#include "isa/encoding.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace vexsim {
namespace {

VliwInstruction sample_instruction() {
  VliwInstruction insn;
  insn.add(ops::alu(Opcode::kAdd, 0, 1, 2, 3));
  insn.add(ops::load(Opcode::kLdw, 1, 4, 5, 64));
  insn.add(ops::cmpi_breg(Opcode::kCmplt, 2, 1, 6, -7));
  insn.add(ops::send(3, 8, 1));
  return insn;
}

TEST(Encoding, RoundTripSingleInstruction) {
  const VliwInstruction insn = sample_instruction();
  std::vector<std::uint64_t> words;
  encode(insn, words);
  std::size_t pos = 0;
  const VliwInstruction decoded = decode(words, pos);
  EXPECT_EQ(pos, words.size());
  EXPECT_EQ(decoded, insn);
}

TEST(Encoding, EmptyInstructionIsOneWord) {
  const VliwInstruction empty;
  EXPECT_EQ(encoded_size_bytes(empty), 8u);
  std::vector<std::uint64_t> words;
  encode(empty, words);
  EXPECT_EQ(words.size(), 1u);
  std::size_t pos = 0;
  EXPECT_EQ(decode(words, pos), empty);
}

TEST(Encoding, SmallImmediateInline) {
  VliwInstruction insn;
  insn.add(ops::movi(0, 1, 32767));
  EXPECT_EQ(encoded_size_bytes(insn), 8u);
  insn = VliwInstruction{};
  insn.add(ops::movi(0, 1, -32768));
  EXPECT_EQ(encoded_size_bytes(insn), 8u);
}

TEST(Encoding, LargeImmediateTakesExtensionWord) {
  VliwInstruction insn;
  insn.add(ops::movi(0, 1, 100000));
  EXPECT_EQ(encoded_size_bytes(insn), 16u);
  std::vector<std::uint64_t> words;
  encode(insn, words);
  std::size_t pos = 0;
  const VliwInstruction decoded = decode(words, pos);
  EXPECT_EQ(decoded.bundle(0)[0].imm, 100000);
}

TEST(Encoding, NegativeLargeImmediate) {
  VliwInstruction insn;
  insn.add(ops::movi(0, 1, -1000000));
  std::vector<std::uint64_t> words;
  encode(insn, words);
  std::size_t pos = 0;
  EXPECT_EQ(decode(words, pos).bundle(0)[0].imm, -1000000);
}

TEST(Encoding, ProgramRoundTrip) {
  Program prog;
  prog.name = "roundtrip";
  prog.code.push_back(sample_instruction());
  prog.code.push_back(VliwInstruction{});
  VliwInstruction tail;
  tail.add(ops::halt(0));
  prog.code.push_back(tail);
  const auto words = encode_program(prog);
  const auto decoded = decode_program(words);
  ASSERT_EQ(decoded.size(), prog.code.size());
  for (std::size_t i = 0; i < decoded.size(); ++i)
    EXPECT_EQ(decoded[i], prog.code[i]) << "instruction " << i;
}

TEST(Encoding, TruncatedStreamThrows) {
  VliwInstruction insn;
  insn.add(ops::movi(0, 1, 100000));  // needs an extension word
  std::vector<std::uint64_t> words;
  encode(insn, words);
  words.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW((void)decode(words, pos), CheckError);
}

TEST(Encoding, FuzzRoundTrip) {
  Rng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    VliwInstruction insn;
    const int nops = rng.range(1, 6);
    for (int i = 0; i < nops; ++i) {
      Operation op;
      op.opc = static_cast<Opcode>(rng.range(1, int(Opcode::kCount) - 1));
      op.cluster = static_cast<std::uint8_t>(rng.below(kMaxClusters));
      op.dst = static_cast<std::uint8_t>(rng.below(kNumGprs));
      op.dst_is_breg = is_compare(op.opc) && rng.chance(0.5);
      if (op.dst_is_breg) op.dst = static_cast<std::uint8_t>(rng.below(8));
      op.src1 = static_cast<std::uint8_t>(rng.below(kNumGprs));
      op.src2 = static_cast<std::uint8_t>(rng.below(kNumGprs));
      op.src2_is_imm = rng.chance(0.3);
      op.bsrc = static_cast<std::uint8_t>(rng.below(kNumBregs));
      op.chan = static_cast<std::uint8_t>(rng.below(kNumChannels));
      op.imm = static_cast<std::int32_t>(rng.next_u32());
      insn.add(op);
    }
    std::vector<std::uint64_t> words;
    encode(insn, words);
    std::size_t pos = 0;
    EXPECT_EQ(decode(words, pos), insn) << "iteration " << iter;
  }
}

}  // namespace
}  // namespace vexsim
