#include "isa/opcode.hpp"

#include <gtest/gtest.h>

namespace vexsim {
namespace {

TEST(Opcode, ClassAssignments) {
  EXPECT_EQ(op_class(Opcode::kAdd), OpClass::kAlu);
  EXPECT_EQ(op_class(Opcode::kMpyl), OpClass::kMul);
  EXPECT_EQ(op_class(Opcode::kMpyh), OpClass::kMul);
  EXPECT_EQ(op_class(Opcode::kLdw), OpClass::kMem);
  EXPECT_EQ(op_class(Opcode::kStb), OpClass::kMem);
  EXPECT_EQ(op_class(Opcode::kBr), OpClass::kBranch);
  EXPECT_EQ(op_class(Opcode::kHalt), OpClass::kBranch);
  EXPECT_EQ(op_class(Opcode::kSend), OpClass::kComm);
  EXPECT_EQ(op_class(Opcode::kRecv), OpClass::kComm);
  EXPECT_EQ(op_class(Opcode::kNop), OpClass::kNop);
}

TEST(Opcode, NameRoundTrip) {
  for (int i = 0; i < static_cast<int>(Opcode::kCount); ++i) {
    const auto opc = static_cast<Opcode>(i);
    EXPECT_EQ(opcode_from_name(opcode_name(opc)), opc)
        << "opcode " << i << " (" << opcode_name(opc) << ")";
  }
}

TEST(Opcode, UnknownNameIsCount) {
  EXPECT_EQ(opcode_from_name("bogus"), Opcode::kCount);
  EXPECT_EQ(opcode_from_name(""), Opcode::kCount);
}

TEST(Opcode, LoadStorePredicates) {
  EXPECT_TRUE(is_load(Opcode::kLdw));
  EXPECT_TRUE(is_load(Opcode::kLdbu));
  EXPECT_FALSE(is_load(Opcode::kStw));
  EXPECT_TRUE(is_store(Opcode::kSth));
  EXPECT_FALSE(is_store(Opcode::kLdh));
  EXPECT_TRUE(is_mem(Opcode::kLdb));
  EXPECT_FALSE(is_mem(Opcode::kAdd));
}

TEST(Opcode, ComparePredicates) {
  EXPECT_TRUE(is_compare(Opcode::kCmpeq));
  EXPECT_TRUE(is_compare(Opcode::kCmpgeu));
  EXPECT_FALSE(is_compare(Opcode::kSlct));
  EXPECT_FALSE(is_compare(Opcode::kAdd));
}

TEST(Opcode, BranchPredicates) {
  EXPECT_TRUE(is_branch(Opcode::kGoto));
  EXPECT_TRUE(is_conditional_branch(Opcode::kBr));
  EXPECT_TRUE(is_conditional_branch(Opcode::kBrf));
  EXPECT_FALSE(is_conditional_branch(Opcode::kGoto));
  EXPECT_FALSE(is_conditional_branch(Opcode::kHalt));
}

TEST(Opcode, DataflowShape) {
  // Destinations.
  EXPECT_TRUE(has_dst(Opcode::kAdd));
  EXPECT_TRUE(has_dst(Opcode::kLdw));
  EXPECT_TRUE(has_dst(Opcode::kRecv));
  EXPECT_FALSE(has_dst(Opcode::kStw));
  EXPECT_FALSE(has_dst(Opcode::kBr));
  EXPECT_FALSE(has_dst(Opcode::kSend));
  EXPECT_FALSE(has_dst(Opcode::kNop));
  // Sources.
  EXPECT_TRUE(reads_src1(Opcode::kAdd));
  EXPECT_FALSE(reads_src1(Opcode::kMovi));
  EXPECT_TRUE(reads_src1(Opcode::kSend));
  EXPECT_FALSE(reads_src1(Opcode::kRecv));
  EXPECT_TRUE(reads_src2(Opcode::kStw));  // stored value
  EXPECT_FALSE(reads_src2(Opcode::kMov));
  EXPECT_FALSE(reads_src2(Opcode::kSxtb));
  // Branch-register readers.
  EXPECT_TRUE(reads_bsrc(Opcode::kSlct));
  EXPECT_TRUE(reads_bsrc(Opcode::kBr));
  EXPECT_FALSE(reads_bsrc(Opcode::kGoto));
}

}  // namespace
}  // namespace vexsim
