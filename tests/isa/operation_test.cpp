#include "isa/operation.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace vexsim {
namespace {

TEST(Operation, AluConstructor) {
  const Operation op = ops::alu(Opcode::kAdd, 2, 5, 6, 7);
  EXPECT_EQ(op.opc, Opcode::kAdd);
  EXPECT_EQ(op.cluster, 2);
  EXPECT_EQ(op.dst, 5);
  EXPECT_EQ(op.src1, 6);
  EXPECT_EQ(op.src2, 7);
  EXPECT_FALSE(op.src2_is_imm);
  EXPECT_TRUE(op.writes_gpr());
  EXPECT_FALSE(op.writes_breg());
}

TEST(Operation, ImmediateForm) {
  const Operation op = ops::alui(Opcode::kShl, 0, 1, 2, 12);
  EXPECT_TRUE(op.src2_is_imm);
  EXPECT_EQ(op.imm, 12);
}

TEST(Operation, CompareToBranchRegister) {
  const Operation op = ops::cmpi_breg(Opcode::kCmplt, 1, 3, 9, 100);
  EXPECT_TRUE(op.dst_is_breg);
  EXPECT_TRUE(op.writes_breg());
  EXPECT_FALSE(op.writes_gpr());
  EXPECT_EQ(op.dst, 3);
}

TEST(Operation, NonCompareCannotTargetBreg) {
  EXPECT_THROW(ops::cmp_breg(Opcode::kAdd, 0, 0, 1, 2), CheckError);
}

TEST(Operation, LoadStoreShape) {
  const Operation ld = ops::load(Opcode::kLdw, 0, 4, 5, 16);
  EXPECT_EQ(ld.dst, 4);
  EXPECT_EQ(ld.src1, 5);
  EXPECT_EQ(ld.imm, 16);
  const Operation st = ops::store(Opcode::kStw, 1, 6, -8, 7);
  EXPECT_EQ(st.src1, 6);
  EXPECT_EQ(st.src2, 7);
  EXPECT_EQ(st.imm, -8);
  EXPECT_FALSE(st.writes_gpr());
}

TEST(Operation, ClusterRangeChecked) {
  EXPECT_THROW(ops::mov(kMaxClusters, 1, 2), CheckError);
}

TEST(Operation, SendRecvChannels) {
  const Operation snd = ops::send(0, 10, 3);
  const Operation rcv = ops::recv(2, 11, 3);
  EXPECT_EQ(snd.chan, 3);
  EXPECT_EQ(rcv.chan, 3);
  EXPECT_EQ(snd.src1, 10);
  EXPECT_EQ(rcv.dst, 11);
  EXPECT_EQ(snd.cls(), OpClass::kComm);
}

TEST(Operation, ToStringForms) {
  EXPECT_EQ(to_string(ops::alu(Opcode::kAdd, 0, 1, 2, 3)),
            "c0 add r1 = r2, r3");
  EXPECT_EQ(to_string(ops::alui(Opcode::kShl, 1, 4, 5, 6)),
            "c1 shl r4 = r5, 6");
  EXPECT_EQ(to_string(ops::movi(0, 7, -3)), "c0 movi r7 = -3");
  EXPECT_EQ(to_string(ops::load(Opcode::kLdw, 2, 1, 2, 8)),
            "c2 ldw r1 = 8[r2]");
  EXPECT_EQ(to_string(ops::store(Opcode::kStw, 0, 2, 4, 3)),
            "c0 stw 4[r2] = r3");
  EXPECT_EQ(to_string(ops::br(0, 1, 5)), "c0 br b1, @5");
  EXPECT_EQ(to_string(ops::halt(0)), "c0 halt");
  EXPECT_EQ(to_string(ops::send(0, 9, 2)), "c0 send ch2 = r9");
  EXPECT_EQ(to_string(ops::recv(1, 8, 2)), "c1 recv r8 = ch2");
  EXPECT_EQ(to_string(ops::cmpi_breg(Opcode::kCmplt, 0, 2, 3, 10)),
            "c0 cmplt b2 = r3, 10");
  EXPECT_EQ(to_string(ops::slct(0, 1, 2, 3, 4)),
            "c0 slct r1 = b2, r3, r4");
}

TEST(Operation, Equality) {
  const Operation a = ops::alu(Opcode::kAdd, 0, 1, 2, 3);
  Operation b = a;
  EXPECT_EQ(a, b);
  b.imm = 5;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace vexsim
