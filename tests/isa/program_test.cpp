#include "isa/program.hpp"

#include <gtest/gtest.h>

#include "isa/encoding.hpp"
#include "util/check.hpp"

namespace vexsim {
namespace {

Program two_instruction_program() {
  Program prog;
  prog.name = "p";
  VliwInstruction a;
  a.add(ops::movi(0, 1, 100000));  // 16 bytes encoded
  prog.code.push_back(a);
  VliwInstruction b;
  b.add(ops::halt(0));
  prog.code.push_back(b);
  return prog;
}

TEST(Program, FinalizeComputesAddresses) {
  Program prog = two_instruction_program();
  prog.finalize();
  ASSERT_TRUE(prog.finalized());
  ASSERT_EQ(prog.instr_addr.size(), 2u);
  EXPECT_EQ(prog.instr_addr[0], prog.code_base);
  EXPECT_EQ(prog.instr_addr[1], prog.code_base + 16);
  EXPECT_EQ(prog.code_bytes, 24u);
}

TEST(Program, AddressesMatchEncoding) {
  Program prog = two_instruction_program();
  prog.finalize();
  std::uint32_t total = 0;
  for (const auto& insn : prog.code) total += encoded_size_bytes(insn);
  EXPECT_EQ(prog.code_bytes, total);
}

TEST(Program, DataWords) {
  Program prog = two_instruction_program();
  prog.add_data_words(0x2000, {0x11223344u, 0xAABBCCDDu});
  ASSERT_EQ(prog.data.size(), 1u);
  EXPECT_EQ(prog.data[0].addr, 0x2000u);
  ASSERT_EQ(prog.data[0].bytes.size(), 8u);
  EXPECT_EQ(prog.data[0].bytes[0], 0x44);  // little endian
  EXPECT_EQ(prog.data[0].bytes[7], 0xAA);
}

TEST(Program, ValidateAcceptsGoodProgram) {
  Program prog = two_instruction_program();
  EXPECT_NO_THROW(prog.validate(4));
}

TEST(Program, ValidateRejectsBadCluster) {
  Program prog = two_instruction_program();
  prog.code[0].add(ops::mov(3, 1, 2));
  EXPECT_THROW(prog.validate(2), CheckError);
  EXPECT_NO_THROW(prog.validate(4));
}

TEST(Program, ValidateRejectsBadBranchTarget) {
  Program prog = two_instruction_program();
  prog.code[0].add(ops::br(0, 0, 99));
  EXPECT_THROW(prog.validate(4), CheckError);
}

TEST(Program, ToStringIncludesLabels) {
  Program prog = two_instruction_program();
  prog.labels[1] = "done";
  const std::string text = to_string(prog);
  EXPECT_NE(text.find("done:"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
}

}  // namespace
}  // namespace vexsim
