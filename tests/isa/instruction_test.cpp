#include "isa/instruction.hpp"

#include <gtest/gtest.h>

namespace vexsim {
namespace {

VliwInstruction example() {
  VliwInstruction insn;
  insn.add(ops::alu(Opcode::kAdd, 0, 1, 2, 3));
  insn.add(ops::load(Opcode::kLdw, 1, 4, 5, 0x200));
  insn.add(ops::alu(Opcode::kSub, 0, 6, 7, 8));
  return insn;
}

TEST(Instruction, AddFilesIntoBundles) {
  const VliwInstruction insn = example();
  EXPECT_EQ(insn.bundle(0).size(), 2u);
  EXPECT_EQ(insn.bundle(1).size(), 1u);
  EXPECT_EQ(insn.bundle(2).size(), 0u);
  EXPECT_EQ(insn.op_count(), 3);
  EXPECT_FALSE(insn.empty());
}

TEST(Instruction, UsedClusterMask) {
  const VliwInstruction insn = example();
  EXPECT_EQ(insn.used_cluster_mask(), 0b11u);
  EXPECT_EQ(VliwInstruction{}.used_cluster_mask(), 0u);
}

TEST(Instruction, EmptyInstruction) {
  const VliwInstruction insn;
  EXPECT_TRUE(insn.empty());
  EXPECT_EQ(insn.op_count(), 0);
  EXPECT_EQ(to_string(insn), "nop");
}

TEST(Instruction, CommAndBranchDetection) {
  VliwInstruction insn = example();
  EXPECT_FALSE(insn.has_comm());
  EXPECT_FALSE(insn.has_branch());
  insn.add(ops::send(2, 1, 0));
  EXPECT_TRUE(insn.has_comm());
  insn.add(ops::br(3, 0, 0));
  EXPECT_TRUE(insn.has_branch());
}

TEST(Instruction, HasMem) {
  VliwInstruction insn;
  insn.add(ops::alu(Opcode::kAdd, 0, 1, 2, 3));
  EXPECT_FALSE(insn.has_mem());
  insn.add(ops::store(Opcode::kStw, 1, 2, 0x100, 3));
  EXPECT_TRUE(insn.has_mem());
}

TEST(Instruction, ForEachOpVisitsAll) {
  const VliwInstruction insn = example();
  int count = 0;
  insn.for_each_op([&count](const Operation&) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST(Instruction, ToStringJoinsOps) {
  VliwInstruction insn;
  insn.add(ops::alu(Opcode::kAdd, 0, 1, 2, 3));
  insn.add(ops::mov(1, 4, 5));
  EXPECT_EQ(to_string(insn), "c0 add r1 = r2, r3 ; c1 mov r4 = r5");
}

TEST(Instruction, Equality) {
  EXPECT_EQ(example(), example());
  VliwInstruction other = example();
  other.add(ops::halt(0));
  EXPECT_FALSE(example() == other);
}

}  // namespace
}  // namespace vexsim
