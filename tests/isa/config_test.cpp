#include "isa/config.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace vexsim {
namespace {

TEST(Config, TechniqueNames) {
  EXPECT_EQ(Technique::smt().name(), "SMT");
  EXPECT_EQ(Technique::csmt().name(), "CSMT");
  EXPECT_EQ(Technique::ccsi(CommPolicy::kNoSplit).name(), "CCSI NS");
  EXPECT_EQ(Technique::ccsi(CommPolicy::kAlwaysSplit).name(), "CCSI AS");
  EXPECT_EQ(Technique::cosi(CommPolicy::kNoSplit).name(), "COSI NS");
  EXPECT_EQ(Technique::oosi(CommPolicy::kAlwaysSplit).name(), "OOSI AS");
}

TEST(Config, AllEightTechniques) {
  // Figure 16 presents exactly these eight configurations.
  EXPECT_EQ(std::size(Technique::kAll), 8u);
  for (const Technique& t : Technique::kAll) {
    MachineConfig cfg = MachineConfig::paper(2, t);
    EXPECT_NO_THROW(cfg.validate()) << t.name();
  }
}

TEST(Config, PaperMachineGeometry) {
  const MachineConfig cfg = MachineConfig::paper(4, Technique::smt());
  EXPECT_EQ(cfg.clusters, 4);
  EXPECT_EQ(cfg.cluster.issue_slots, 4);
  EXPECT_EQ(cfg.total_issue_width(), 16);
  EXPECT_EQ(cfg.cluster.alus, 4);
  EXPECT_EQ(cfg.cluster.muls, 2);
  EXPECT_EQ(cfg.cluster.mem_units, 1);
  EXPECT_EQ(cfg.lat.mem, 2);
  EXPECT_EQ(cfg.lat.mul, 2);
  EXPECT_EQ(cfg.lat.alu, 1);
  EXPECT_EQ(cfg.lat.cmp_to_branch, 2);
  EXPECT_EQ(cfg.lat.taken_branch_penalty, 1);
  EXPECT_EQ(cfg.icache.size_bytes, 64u * 1024);
  EXPECT_EQ(cfg.icache.assoc, 4u);
  EXPECT_EQ(cfg.icache.miss_penalty, 20u);
}

TEST(Config, OperationSplitRequiresOperationMerge) {
  MachineConfig cfg = MachineConfig::paper(2, Technique::smt());
  cfg.technique.merge = MergeLevel::kCluster;
  cfg.technique.split = SplitLevel::kOperation;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(Config, SharedRegFileIncompatibleWithSplit) {
  MachineConfig cfg =
      MachineConfig::paper(2, Technique::ccsi(CommPolicy::kNoSplit));
  cfg.rf_org = RegFileOrg::kShared;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.technique = Technique::csmt();
  EXPECT_NO_THROW(cfg.validate());  // no split: shared RF is allowed
}

TEST(Config, RenamingRotation) {
  MachineConfig cfg = MachineConfig::paper(4, Technique::csmt());
  // 4-thread 4-cluster: thread i rotated by i (Section IV).
  EXPECT_EQ(cfg.renaming_rotation(0), 0);
  EXPECT_EQ(cfg.renaming_rotation(1), 1);
  EXPECT_EQ(cfg.renaming_rotation(2), 2);
  EXPECT_EQ(cfg.renaming_rotation(3), 3);
  // 2-thread 4-cluster: thread i rotated by i (partial overlap by design).
  MachineConfig cfg2 = MachineConfig::paper(2, Technique::csmt());
  EXPECT_EQ(cfg2.renaming_rotation(0), 0);
  EXPECT_EQ(cfg2.renaming_rotation(1), 1);
  // Disabled renaming rotates nothing.
  cfg2.cluster_renaming = false;
  EXPECT_EQ(cfg2.renaming_rotation(1), 0);
  // Single-threaded machines never rotate.
  MachineConfig cfg1 = MachineConfig::paper_single();
  EXPECT_EQ(cfg1.renaming_rotation(0), 0);
}

TEST(Config, BranchUnitPlacement) {
  MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  cfg.branch_on_cluster0_only = true;
  EXPECT_EQ(cfg.branch_units_at(0), 1);
  EXPECT_EQ(cfg.branch_units_at(1), 0);
  cfg.branch_on_cluster0_only = false;
  EXPECT_EQ(cfg.branch_units_at(3), 1);
}

TEST(Config, AsymmetricGeometry) {
  MachineConfig cfg = MachineConfig::paper(1, Technique::smt());
  EXPECT_FALSE(cfg.asymmetric());
  EXPECT_EQ(cfg.geometry_name(), "4x4");

  cfg.cluster_overrides = {ClusterResourceConfig::for_issue_width(8),
                           ClusterResourceConfig::for_issue_width(4),
                           ClusterResourceConfig::for_issue_width(2),
                           ClusterResourceConfig::for_issue_width(2)};
  EXPECT_TRUE(cfg.asymmetric());
  EXPECT_EQ(cfg.geometry_name(), "8+4+2+2");
  EXPECT_EQ(cfg.total_issue_width(), 16);
  EXPECT_EQ(cfg.cluster_at(0).issue_slots, 8);
  EXPECT_EQ(cfg.cluster_at(0).muls, 4);
  EXPECT_EQ(cfg.cluster_at(2).issue_slots, 2);
  EXPECT_EQ(cfg.cluster_at(3).mem_units, 1);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, AsymmetricValidation) {
  MachineConfig cfg = MachineConfig::paper(2, Technique::smt());
  // Wrong override count: one entry per cluster or none at all.
  cfg.cluster_overrides = {ClusterResourceConfig::for_issue_width(4)};
  EXPECT_THROW(cfg.validate(), CheckError);

  // Renaming would rotate wide bundles onto narrow clusters.
  cfg.cluster_overrides = {ClusterResourceConfig::for_issue_width(8),
                           ClusterResourceConfig::for_issue_width(4),
                           ClusterResourceConfig::for_issue_width(2),
                           ClusterResourceConfig::for_issue_width(2)};
  cfg.cluster_renaming = true;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.cluster_renaming = false;
  EXPECT_NO_THROW(cfg.validate());

  // Per-cluster issue bounds still apply to overrides.
  cfg.cluster_overrides[1].issue_slots = kMaxIssuePerCluster + 1;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(Config, LatencyForClass) {
  const LatencyConfig lat;
  EXPECT_EQ(lat.for_class(OpClass::kAlu), 1);
  EXPECT_EQ(lat.for_class(OpClass::kMul), 2);
  EXPECT_EQ(lat.for_class(OpClass::kMem), 2);
  EXPECT_EQ(lat.for_class(OpClass::kComm), 1);
}

}  // namespace
}  // namespace vexsim
