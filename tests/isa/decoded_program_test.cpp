// The decode cache must agree exactly with what the hot paths previously
// re-derived per cycle from the instruction stream and the opcode
// classification helpers.
#include "isa/decoded_program.hpp"

#include <gtest/gtest.h>

#include "isa/program.hpp"
#include "isa/resources.hpp"
#include "vasm/assembler.hpp"

namespace vexsim {
namespace {

Program sample_program() {
  return assemble(
      "c0 add r1 = r2, r3 ; c0 mpyl r4 = r5, r6 ; c1 ldw r7 = 0x200[r0]\n"
      "c0 cmplt b1 = r1, r4 ; c2 stw 0x204[r0] = r1 ; c3 movi r9 = 7\n"
      "c0 send ch0 = r1 ; c1 recv r2 = ch0\n"
      "c0 br b1, @0\n"
      "c1 slct r3 = b0, r1, r2\n"
      "c0 halt\n",
      "decode_sample");
}

TEST(DecodedProgram, BuiltByFinalizeAndSized) {
  Program p = sample_program();  // assemble() finalizes
  p.finalize();                  // re-finalizing rebuilds consistently
  ASSERT_NE(p.decoded, nullptr);
  EXPECT_EQ(p.decoded->size(), p.code.size());
  EXPECT_TRUE(p.finalized());
}

TEST(DecodedProgram, WholeBundleUseMatchesRecomputation) {
  Program p = sample_program();
  p.finalize();
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const DecodedInstruction& dec = p.decoded->insn(i);
    for (int c = 0; c < kMaxClusters; ++c) {
      const Bundle& bundle = p.code[i].bundle(c);
      const DecodedBundle& db = dec.bundle(c);
      const auto full = static_cast<std::uint8_t>((1u << bundle.size()) - 1u);
      EXPECT_EQ(db.full_mask, full) << i << "/" << c;
      EXPECT_EQ(db.whole_use, bundle_use(bundle, full)) << i << "/" << c;
      EXPECT_EQ(dec.full_masks[static_cast<std::size_t>(c)], db.full_mask);
      for (std::size_t k = 0; k < bundle.size(); ++k) {
        ResourceUse one;
        one.add(bundle[k]);
        EXPECT_EQ(db.ops[k].use, one) << i << "/" << c << "/" << k;
      }
    }
  }
}

TEST(DecodedProgram, SummariesMatchInstructionQueries) {
  Program p = sample_program();
  p.finalize();
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const DecodedInstruction& dec = p.decoded->insn(i);
    EXPECT_EQ(static_cast<int>(dec.op_count), p.code[i].op_count()) << i;
    EXPECT_EQ(dec.has_comm, p.code[i].has_comm()) << i;
    EXPECT_EQ(dec.has_branch, p.code[i].has_branch()) << i;
    EXPECT_EQ(dec.used_cluster_mask, p.code[i].used_cluster_mask()) << i;
  }
}

TEST(DecodedProgram, OperandFlagsMatchOpcodeHelpers) {
  Program p = sample_program();
  p.finalize();
  p.code[0].for_each_op([](const Operation& op) { (void)op; });
  for (const VliwInstruction& insn : p.code) {
    insn.for_each_op([](const Operation& op) {
      const DecodedOp d = DecodedProgram::decode_op(op);
      EXPECT_EQ(d.cls, op.cls());
      EXPECT_EQ(d.has(DecodedOp::kReadsSrc1), reads_src1(op.opc));
      EXPECT_EQ(d.has(DecodedOp::kReadsBsrc), reads_bsrc(op.opc));
      EXPECT_EQ(d.has(DecodedOp::kLoad), is_load(op.opc));
      EXPECT_EQ(d.has(DecodedOp::kDstBreg), op.dst_is_breg);
      // Operand b source: movi and immediate-src2 forms read the immediate;
      // the register form reads gpr[src2]; everything else reads neither.
      if (op.opc == Opcode::kMovi) {
        EXPECT_TRUE(d.has(DecodedOp::kSrc2Imm));
        EXPECT_FALSE(d.has(DecodedOp::kSrc2Reg));
      } else if (reads_src2(op.opc)) {
        EXPECT_EQ(d.has(DecodedOp::kSrc2Imm), op.src2_is_imm);
        EXPECT_EQ(d.has(DecodedOp::kSrc2Reg), !op.src2_is_imm);
      } else {
        EXPECT_FALSE(d.has(DecodedOp::kSrc2Imm));
        EXPECT_FALSE(d.has(DecodedOp::kSrc2Reg));
      }
      if (op.cls() == OpClass::kMem)
        EXPECT_EQ(static_cast<int>(d.mem_size), mem_access_size(op.opc));
      else
        EXPECT_EQ(d.mem_size, 0);
    });
  }
}

TEST(DecodedProgram, SingletonUseIsOneSlotOfTheRightClass) {
  const Operation mul = ops::mpyl(2, 1, 2, 3);
  const DecodedOp d = DecodedProgram::decode_op(mul);
  EXPECT_EQ(d.use.slots(), 1);
  EXPECT_EQ(d.use.mul(), 1);
  EXPECT_EQ(d.use.alu(), 0);
  EXPECT_EQ(d.use.mem(), 0);
  EXPECT_EQ(d.use.br(), 0);
}

}  // namespace
}  // namespace vexsim
