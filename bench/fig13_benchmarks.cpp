// Figure 13(a): the benchmark table — ILP class, IPCr (real memory) and
// IPCp (perfect memory) for each benchmark, single-threaded on the 16-issue
// 4-cluster machine, next to the paper's reported values.
//
// Flags: --scale, --budget, --seed, --quick, --paper, --csv.
#include <iostream>

#include "harness/experiments.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto opt = harness::ExperimentOptions::from_cli(cli);

  std::cout << "Figure 13(a): benchmarks — measured vs paper (single thread, "
               "4 clusters x 4-issue)\n\n";

  Table table({"benchmark", "class", "IPCr", "IPCp", "paper IPCr",
               "paper IPCp", "IPCr/IPCp", "paper ratio"});
  for (const wl::BenchmarkInfo& info : wl::benchmark_registry()) {
    const RunResult real = harness::run_single(info.name, false, opt);
    const RunResult perfect = harness::run_single(info.name, true, opt);
    table.add_row({info.name, std::string(1, static_cast<char>(info.ilp)),
                   Table::fmt(real.ipc()), Table::fmt(perfect.ipc()),
                   Table::fmt(info.paper_ipcr), Table::fmt(info.paper_ipcp),
                   Table::fmt(real.ipc() / perfect.ipc()),
                   Table::fmt(info.paper_ipcr / info.paper_ipcp)});
  }
  if (cli.get_bool("csv", false))
    std::cout << table.to_csv();
  else
    std::cout << table.to_text();
  std::cout << "\nShape check: l < m < h ordering of IPCp; mcf/blowfish/cjpeg "
               "show the largest IPCr/IPCp gaps.\n";
  return 0;
}
