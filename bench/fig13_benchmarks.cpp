// Figure 13(a): the benchmark table — ILP class, IPCr (real memory) and
// IPCp (perfect memory) for each benchmark, single-threaded on the 16-issue
// 4-cluster machine, next to the paper's reported values.
//
// Both memory configurations of every benchmark run through the parallel
// sweep engine: --jobs N picks the worker count (results are bit-identical
// for any N) and the raw per-point statistics land in a JSON trajectory.
//
// Flags: --cc NAME, --cc-verify, --config FILE (base machine description),
//        --mem fixed|hierarchy (memory backend; default fixed),
//        --scale, --budget, --seed, --quick, --paper, --csv, --jobs N,
//        --progress N, --json FILE (default BENCH_fig13_benchmarks.json),
//        --cache[=DIR]/--no-cache (result cache), --timeout MS, --retries N,
//        --shard I/N (run one round-robin slice and emit a shard document
//        for tools/vexmerge), --cache-gc SIZE (post-sweep cache eviction).
#include <iostream>
#include <vector>

#include "harness/shard.hpp"
#include "harness/sweep.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  harness::ExperimentOptions opt = harness::ExperimentOptions::from_cli(cli);
  opt.timeslice = ~0ull;  // single program per point: no context switching

  std::cout << "Figure 13(a): benchmarks — measured vs paper (single thread, "
               "4 clusters x 4-issue)\n\n";

  auto make_cfg = [&opt](bool perfect_memory) {
    MachineConfig cfg = opt.machine_single();
    cfg.icache.perfect = perfect_memory;
    cfg.dcache.perfect = perfect_memory;
    return cfg;
  };

  std::vector<harness::SweepPoint> points;
  for (const wl::BenchmarkInfo& info : wl::benchmark_registry()) {
    points.push_back({info.name + "/IPCr", make_cfg(false), info.name, opt});
    points.push_back({info.name + "/IPCp", make_cfg(true), info.name, opt});
  }
  const std::vector<RunResult> results =
      harness::run_sweep_and_dump(cli, "fig13_benchmarks", points);

  if (harness::ShardSpec::from_cli(cli).active) {
    std::cout << "shard run: tables skipped; merge the shard JSONs with "
                 "tools/vexmerge\n";
    return 0;
  }

  Table table({"benchmark", "class", "IPCr", "IPCp", "paper IPCr",
               "paper IPCp", "IPCr/IPCp", "paper ratio"});
  for (const wl::BenchmarkInfo& info : wl::benchmark_registry()) {
    const RunResult& real =
        harness::result_for(points, results, info.name + "/IPCr");
    const RunResult& perfect =
        harness::result_for(points, results, info.name + "/IPCp");
    table.add_row({info.name, std::string(1, static_cast<char>(info.ilp)),
                   Table::fmt(real.ipc()), Table::fmt(perfect.ipc()),
                   Table::fmt(info.paper_ipcr), Table::fmt(info.paper_ipcp),
                   Table::fmt(real.ipc() / perfect.ipc()),
                   Table::fmt(info.paper_ipcr / info.paper_ipcp)});
  }
  if (cli.get_bool("csv", false))
    std::cout << table.to_csv();
  else
    std::cout << table.to_text();
  std::cout << "\nShape check: l < m < h ordering of IPCp; mcf/blowfish/cjpeg "
               "show the largest IPCr/IPCp gaps.\n";
  return 0;
}
