// Ablation A3: timeslice sensitivity (Section VI-A uses 5M cycles).
//
// The context-switch drain and the cold-cache effect after a switch shrink
// as the timeslice grows; results should be stable across reasonable
// slices, supporting the paper's claim that the respawning scheme does not
// need FAME-style stabilization.
//
// All simulation points run through the parallel sweep engine; --jobs N
// picks the worker count (results are bit-identical for any N) and the raw
// per-point statistics land in a JSON trajectory file.
//
// Flags: --cc NAME, --cc-verify, --config FILE (base machine description),
//        --mem fixed|hierarchy (memory backend; default fixed),
//        --scale, --budget, --seed, --quick, --paper, --csv, --jobs N,
//        --progress N, --flush N, --json FILE,
//        --cache[=DIR]/--no-cache (result cache), --timeout MS, --retries N,
//        --shard I/N (run one round-robin slice and emit a shard document
//        for tools/vexmerge), --cache-gc SIZE (post-sweep cache eviction).
#include <iostream>
#include <vector>

#include "harness/shard.hpp"
#include "harness/sweep.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  auto opt = harness::ExperimentOptions::from_cli(cli);

  std::cout << "Ablation: timeslice sensitivity (llhh, 2-thread CCSI AS)\n\n";

  const std::vector<std::uint64_t> slices = {10'000, 25'000, 50'000, 100'000,
                                             200'000};
  std::vector<harness::SweepPoint> points;
  for (std::uint64_t slice : slices) {
    opt.timeslice = slice;
    points.push_back(
        {"slice/" + std::to_string(slice),
         opt.machine(2, Technique::ccsi(CommPolicy::kAlwaysSplit)),
         "llhh", opt});
  }
  const std::vector<RunResult> results =
      harness::run_sweep_and_dump(cli, "abl_timeslice", points);

  if (harness::ShardSpec::from_cli(cli).active) {
    std::cout << "shard run: tables skipped; merge the shard JSONs with "
                 "tools/vexmerge\n";
    return 0;
  }

  Table table({"timeslice", "IPC", "drain cycles", "context-switch rate"});
  for (std::uint64_t slice : slices) {
    const RunResult& r = harness::result_for(
        points, results, "slice/" + std::to_string(slice));
    table.add_row({std::to_string(slice), Table::fmt(r.ipc(), 3),
                   std::to_string(r.sim.drain_cycles),
                   Table::fmt(static_cast<double>(r.sim.cycles) /
                                  static_cast<double>(slice),
                              1)});
  }
  if (cli.get_bool("csv", false))
    std::cout << table.to_csv();
  else
    std::cout << table.to_text();
  std::cout << "\nShape check: IPC varies only a few percent across a 20x "
               "timeslice range.\n";
  return 0;
}
