// Ablation A3: timeslice sensitivity (Section VI-A uses 5M cycles).
//
// The context-switch drain and the cold-cache effect after a switch shrink
// as the timeslice grows; results should be stable across reasonable
// slices, supporting the paper's claim that the respawning scheme does not
// need FAME-style stabilization.
#include <iostream>

#include "harness/experiments.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  auto opt = harness::ExperimentOptions::from_cli(cli);

  std::cout << "Ablation: timeslice sensitivity (llhh, 2-thread CCSI AS)\n\n";
  Table table({"timeslice", "IPC", "drain cycles", "context-switch rate"});
  for (std::uint64_t slice : {10'000ull, 25'000ull, 50'000ull, 100'000ull,
                              200'000ull}) {
    opt.timeslice = slice;
    const RunResult r = harness::run_workload(
        "llhh", 2, Technique::ccsi(CommPolicy::kAlwaysSplit), opt);
    table.add_row({std::to_string(slice), Table::fmt(r.ipc(), 3),
                   std::to_string(r.sim.drain_cycles),
                   Table::fmt(static_cast<double>(r.sim.cycles) /
                                  static_cast<double>(slice),
                              1)});
  }
  std::cout << table.to_text();
  std::cout << "\nShape check: IPC varies only a few percent across a 20x "
               "timeslice range.\n";
  return 0;
}
