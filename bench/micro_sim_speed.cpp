// Microbenchmark A6: simulator throughput (simulated cycles and operations
// per wall-clock second) for representative configurations.
#include <benchmark/benchmark.h>

#include "sim/driver.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace vexsim;

void run_config(benchmark::State& state, int threads, Technique t,
                const char* workload) {
  const MachineConfig cfg = MachineConfig::paper(threads, t);
  auto programs = wl::build_workload(wl::workload(workload), cfg, 0.05);
  std::uint64_t cycles = 0, ops = 0;
  for (auto _ : state) {
    DriverParams params;
    params.budget = 20'000;
    params.timeslice = 10'000;
    params.max_cycles = 10'000'000;
    MultiprogramDriver driver(cfg, programs, params);
    const RunResult r = driver.run();
    cycles += r.sim.cycles;
    ops += r.sim.ops_issued;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["sim_ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void BM_Sim_2T_CSMT(benchmark::State& s) {
  run_config(s, 2, Technique::csmt(), "llmm");
}
void BM_Sim_4T_CCSI_AS(benchmark::State& s) {
  run_config(s, 4, Technique::ccsi(CommPolicy::kAlwaysSplit), "llmm");
}
void BM_Sim_4T_OOSI_AS(benchmark::State& s) {
  run_config(s, 4, Technique::oosi(CommPolicy::kAlwaysSplit), "hhhh");
}

BENCHMARK(BM_Sim_2T_CSMT)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sim_4T_CCSI_AS)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sim_4T_OOSI_AS)->Unit(benchmark::kMillisecond);

}  // namespace
