// Microbenchmark A6: simulator throughput (simulated cycles and operations
// per wall-clock second) for representative configurations, tracked as a
// machine-readable trajectory so every PR's hot-path claim is measurable.
//
// Each configuration runs twice: the reference engine (pure cycle-by-cycle
// loop, select-then-execute, no idle-cycle batching) and the fast engine
// (fused select+execute plus fast-forward). The two runs must produce
// bit-identical statistics — checked here on every invocation — so the
// speedup column is a pure wall-clock ratio at equal work.
//
// A second leg benchmarks the result-cache index (harness/result_cache.hpp):
// it populates a scratch cache directory with N synthetic records, then
// measures index load time, indexed warm-hit rate, indexed miss-probe rate
// (pure map lookup, no I/O) and the unindexed miss baseline (one failed
// open() per probe). Rates land in a top-level "cache_probe" array in the
// JSON — integer records/sec, gated by probe_floors in the perf-floor
// check — and the indexed path is self-checked against the unindexed one
// (identical hits, including after an index delete + transparent rebuild).
//
// Flags: --reps N (timing repetitions, best-of), --config FILE (base
//        machine description), --mem fixed|hierarchy (memory backend),
//        --budget/--timeslice/
//        --scale/--seed/--quick/--paper, --profile (append an untimed
//        per-phase wall-clock breakdown for both engines to the JSON),
//        --probe-records N (single cache-probe size instead of the default
//        1k/100k pair — 1k/10k under --quick), --probe-dir DIR (scratch
//        cache directory, default sweep-probe-scratch, wiped before and
//        after), --json FILE (default BENCH_sim_speed.json). The sweep
//        result cache (--cache) does not apply here: this bench measures
//        wall-clock, so every run must re-simulate.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiments.hpp"
#include "harness/result_cache.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

using namespace vexsim;

struct SpeedPoint {
  std::string label;
  std::string workload;
  int threads;
  Technique technique;
};

struct SpeedResult {
  RunResult run;
  double base_seconds = 0;  // reference engine (fused + fast_forward off)
  double fast_seconds = 0;  // fused engine + fast_forward
  SimProfile base_profile;
  SimProfile fast_profile;
};

double time_once(const std::string& workload, int threads, Technique t,
                 const harness::ExperimentOptions& opt, RunResult& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = harness::run_workload(workload, threads, t, opt);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void check_identical(const std::string& label, const RunResult& a,
                     const RunResult& b) {
  VEXSIM_CHECK_MSG(
      a.sim.cycles == b.sim.cycles && a.sim.ops_issued == b.sim.ops_issued &&
          a.sim.instructions_retired == b.sim.instructions_retired &&
          a.sim.split_instructions == b.sim.split_instructions &&
          a.sim.vertical_waste_cycles == b.sim.vertical_waste_cycles &&
          a.sim.multi_thread_cycles == b.sim.multi_thread_cycles &&
          a.sim.memport_stall_cycles == b.sim.memport_stall_cycles &&
          a.sim.drain_cycles == b.sim.drain_cycles &&
          a.sim.taken_branches == b.sim.taken_branches &&
          a.sim.faults == b.sim.faults &&
          a.icache.hits == b.icache.hits &&
          a.icache.misses == b.icache.misses &&
          a.dcache.hits == b.dcache.hits &&
          a.dcache.misses == b.dcache.misses,
      "fused-engine statistics diverge from the reference loop for " << label);
  VEXSIM_CHECK(a.instances.size() == b.instances.size());
  for (std::size_t i = 0; i < a.instances.size(); ++i)
    VEXSIM_CHECK_MSG(a.instances[i].arch_fingerprint ==
                         b.instances[i].arch_fingerprint,
                     "fused-engine architectural state diverges for " << label);
}

Json profile_json(const SimProfile& p) {
  Json j = Json::object();
  j.set("commit_seconds", p.commit_seconds)
      .set("refill_seconds", p.refill_seconds)
      .set("select_seconds", p.select_seconds)
      .set("execute_seconds", p.execute_seconds)
      .set("complete_seconds", p.complete_seconds)
      .set("fast_forward_seconds", p.fast_forward_seconds)
      .set("steps", p.steps)
      .set("total_seconds", p.total());
  return j;
}

void print_profile(const std::string& label, const char* engine,
                   const SimProfile& p) {
  const double total = p.total();
  auto pct = [total](double s) {
    return total > 0 ? Table::fmt(100.0 * s / total, 1) + "%" : "-";
  };
  std::cout << "  " << label << " [" << engine << "] commit "
            << pct(p.commit_seconds) << ", refill " << pct(p.refill_seconds)
            << ", select " << pct(p.select_seconds) << ", execute "
            << pct(p.execute_seconds) << ", complete "
            << pct(p.complete_seconds) << ", fast-forward "
            << pct(p.fast_forward_seconds) << " of " << Table::fmt(total, 3)
            << "s\n";
}

// Distinct, well-mixed synthetic fingerprints for the cache-probe leg.
std::uint64_t probe_key(std::uint64_t i) {
  std::uint64_t z = (i + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Result-cache probe benchmark: O(1)-index hit/miss rates vs the unindexed
// open()-per-probe baseline, one entry per population size. `sample` is a
// RunResult to clone into every synthetic record.
Json run_cache_probe(const std::vector<std::uint64_t>& sizes,
                     const std::string& scratch_dir,
                     const std::string& workload, const RunResult& sample) {
  namespace fs = std::filesystem;
  using clock = std::chrono::steady_clock;
  const auto seconds = [](clock::time_point a, clock::time_point b) {
    return std::max(std::chrono::duration<double>(b - a).count(), 1e-9);
  };
  // Miss keys live in a disjoint stream from probe_key(i): the top bit is
  // forced, and probe_key never produces 2^63 consecutive records.
  const auto miss_key = [](std::uint64_t j) {
    return probe_key(j + (1ull << 40)) | (1ull << 63);
  };

  Json arr = Json::array();
  for (const std::uint64_t n : sizes) {
    fs::remove_all(scratch_dir);
    {
      const harness::ResultCache writer(scratch_dir);
      for (std::uint64_t i = 0; i < n; ++i)
        writer.store(probe_key(i), workload, sample);
    }

    // Index load: what every shard process pays once at startup.
    const auto t0 = clock::now();
    const harness::ResultCache cache(scratch_dir);
    const auto t1 = clock::now();
    VEXSIM_CHECK_MSG(cache.index_size() == n,
                     "cache-probe: index loaded " << cache.index_size()
                                                  << " of " << n << " records");

    // Warm hits through the index, sampled across the keyspace.
    const std::uint64_t hit_samples = std::min<std::uint64_t>(n, 200);
    const std::uint64_t stride = n / hit_samples;
    const auto t2 = clock::now();
    for (std::uint64_t s = 0; s < hit_samples; ++s)
      VEXSIM_CHECK(cache.load(probe_key(s * stride)).has_value());
    const auto t3 = clock::now();

    // Indexed misses: pure in-memory lookup, the sweep pre-pass hot path.
    const std::uint64_t miss_probes = 200'000;
    const auto t4 = clock::now();
    std::uint64_t false_hits = 0;
    for (std::uint64_t j = 0; j < miss_probes; ++j)
      false_hits += cache.probe(miss_key(j)) ? 1 : 0;
    const auto t5 = clock::now();
    VEXSIM_CHECK(false_hits == 0);

    // Unindexed misses: the pre-index baseline, one failed open() each.
    const std::uint64_t unindexed_probes = 2'000;
    const auto t6 = clock::now();
    for (std::uint64_t j = 0; j < unindexed_probes; ++j)
      VEXSIM_CHECK(!cache.load_unindexed(miss_key(j)).has_value());
    const auto t7 = clock::now();

    // Self-check: the index changes probe cost, never hit results — also
    // across an index delete + transparent rebuild.
    for (std::uint64_t s = 0; s < std::min<std::uint64_t>(n, 5); ++s) {
      const auto a = cache.load(probe_key(s));
      const auto b = cache.load_unindexed(probe_key(s));
      VEXSIM_CHECK(a && b && a->sim.cycles == b->sim.cycles &&
                   a->sim.instructions_retired == b->sim.instructions_retired);
    }
    fs::remove(cache.index_path());
    const harness::ResultCache rebuilt(scratch_dir);
    VEXSIM_CHECK_MSG(rebuilt.index_size() == n,
                     "cache-probe: rebuild after index delete found "
                         << rebuilt.index_size() << " of " << n << " records");
    VEXSIM_CHECK(rebuilt.load(probe_key(0)).has_value());

    // Integer rates: the perf-floor gate compares them with CMake integer
    // arithmetic, which cannot parse exponent-form doubles.
    const auto rate = [&](std::uint64_t count, double secs) {
      return static_cast<std::uint64_t>(static_cast<double>(count) / secs);
    };
    Json pj = Json::object();
    pj.set("records", n)
        .set("index_load_seconds", seconds(t0, t1))
        .set("hit_per_sec", rate(hit_samples, seconds(t2, t3)))
        .set("miss_probe_per_sec", rate(miss_probes, seconds(t4, t5)))
        .set("miss_unindexed_per_sec",
             rate(unindexed_probes, seconds(t6, t7)));
    std::cout << "  cache-probe " << n << " records: index load "
              << Table::fmt(seconds(t0, t1) * 1e3, 2) << "ms, warm hits "
              << rate(hit_samples, seconds(t2, t3)) << "/s, indexed misses "
              << rate(miss_probes, seconds(t4, t5)) << "/s, unindexed misses "
              << rate(unindexed_probes, seconds(t6, t7)) << "/s\n";
    arr.push(std::move(pj));
  }
  fs::remove_all(scratch_dir);
  return arr;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  auto opt = harness::ExperimentOptions::from_cli(cli);
  // Throughput protocol: modest budget, default timeslice — large enough to
  // amortize workload construction, small enough for a CI smoke run.
  if (!cli.has("budget")) opt.budget = cli.get_bool("quick", false)
                                           ? 30'000
                                           : 100'000;
  const int reps =
      static_cast<int>(cli.get_int("reps", cli.get_bool("quick", false) ? 2 : 5));
  VEXSIM_CHECK_MSG(reps >= 1, "--reps must be >= 1");
  const bool profile = cli.get_bool("profile", false);

  const std::vector<SpeedPoint> points = {
      {"2T_csmt/llmm", "llmm", 2, Technique::csmt()},
      {"4T_ccsi_AS/llmm", "llmm", 4, Technique::ccsi(CommPolicy::kAlwaysSplit)},
      {"4T_oosi_AS/hhhh", "hhhh", 4, Technique::oosi(CommPolicy::kAlwaysSplit)},
  };

  std::cout << "Simulator throughput (budget " << opt.budget << " VLIW insns, "
            << reps << " reps, best-of)\n\n";

  std::vector<SpeedResult> results;
  for (const SpeedPoint& p : points) {
    SpeedResult r;
    // Warm the memoized workload cache so timing excludes compilation.
    opt.fast_forward = true;
    opt.fused = true;
    (void)time_once(p.workload, p.threads, p.technique, opt, r.run);

    RunResult base_run, fast_run;
    double base = 1e300, fast = 1e300;
    for (int i = 0; i < reps; ++i) {
      opt.fast_forward = false;
      opt.fused = false;
      base = std::min(base,
                      time_once(p.workload, p.threads, p.technique, opt,
                                base_run));
      opt.fast_forward = true;
      opt.fused = true;
      fast = std::min(fast,
                      time_once(p.workload, p.threads, p.technique, opt,
                                fast_run));
    }
    check_identical(p.label, base_run, fast_run);
    r.run = fast_run;
    r.base_seconds = base;
    r.fast_seconds = fast;
    if (profile) {
      // Untimed extra runs: the per-phase clocks perturb the loop, so the
      // breakdown is reported alongside — never instead of — the wall times.
      RunResult prof_run;
      opt.profile = true;
      opt.fast_forward = false;
      opt.fused = false;
      (void)time_once(p.workload, p.threads, p.technique, opt, prof_run);
      r.base_profile = prof_run.profile;
      opt.fast_forward = true;
      opt.fused = true;
      (void)time_once(p.workload, p.threads, p.technique, opt, prof_run);
      r.fast_profile = prof_run.profile;
      opt.profile = false;
    }
    results.push_back(r);
  }

  Table table({"config", "cycles", "Mcycles/s base", "Mcycles/s fast",
               "Mops/s fast", "fast/base"});
  Json arr = Json::array();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SpeedPoint& p = points[i];
    const SpeedResult& r = results[i];
    const double cycles = static_cast<double>(r.run.sim.cycles);
    const double ops = static_cast<double>(r.run.sim.ops_issued);
    const double base_cps = cycles / r.base_seconds;
    const double fast_cps = cycles / r.fast_seconds;
    table.add_row({p.label, std::to_string(r.run.sim.cycles),
                   Table::fmt(base_cps / 1e6, 2), Table::fmt(fast_cps / 1e6, 2),
                   Table::fmt(ops / r.fast_seconds / 1e6, 2),
                   Table::fmt(fast_cps / base_cps, 2)});

    Json pj = Json::object();
    pj.set("label", p.label)
        .set("workload", p.workload)
        .set("threads", p.threads)
        .set("technique", p.technique.name())
        .set("cycles", r.run.sim.cycles)
        .set("ops_issued", r.run.sim.ops_issued)
        .set("wall_seconds_base", r.base_seconds)
        .set("wall_seconds_fast", r.fast_seconds)
        .set("cycles_per_sec_base", base_cps)
        .set("cycles_per_sec_fast", fast_cps)
        .set("ops_per_sec_fast", ops / r.fast_seconds)
        .set("fast_over_base", fast_cps / base_cps);
    if (profile) {
      pj.set("profile_base", profile_json(r.base_profile));
      pj.set("profile_fast", profile_json(r.fast_profile));
    }
    arr.push(std::move(pj));
  }

  std::cout << "\nResult-cache probe (index vs unindexed):\n";
  std::vector<std::uint64_t> probe_sizes;
  if (cli.has("probe-records")) {
    const std::int64_t pr = cli.get_int("probe-records", 0);
    VEXSIM_CHECK_MSG(pr >= 1, "--probe-records must be >= 1");
    probe_sizes.push_back(static_cast<std::uint64_t>(pr));
  } else if (cli.get_bool("quick", false)) {
    probe_sizes = {1'000, 10'000};
  } else {
    probe_sizes = {1'000, 100'000};
  }
  Json probe_arr =
      run_cache_probe(probe_sizes, cli.get("probe-dir", "sweep-probe-scratch"),
                      points[0].workload, results[0].run);

  Json doc = Json::object();
  doc.set("experiment", "sim_speed")
      .set("budget", opt.budget)
      .set("timeslice", opt.timeslice)
      .set("scale", opt.scale)
      .set("reps", reps)
      .set("points", std::move(arr))
      .set("cache_probe", std::move(probe_arr));
  write_json_file(cli.get("json", "BENCH_sim_speed.json"), std::move(doc));

  std::cout << "\n" << table.to_text();
  if (profile) {
    std::cout << "\nPer-phase wall-clock breakdown (separate instrumented "
                 "runs):\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      print_profile(points[i].label, "base", results[i].base_profile);
      print_profile(points[i].label, "fused", results[i].fast_profile);
    }
  }
  std::cout << "\nStats are verified bit-identical between the reference and "
               "fused engines before any ratio is reported.\n";
  return 0;
}
