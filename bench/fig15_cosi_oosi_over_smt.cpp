// Figure 15: speedups of cluster-level (COSI) and operation-level (OOSI)
// split-issue over SMT, for 2-thread and 4-thread machines, NS and AS.
//
// Flags: --scale, --budget, --timeslice, --seed, --quick, --paper, --csv.
#include <iostream>
#include <vector>

#include "harness/experiments.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto opt = harness::ExperimentOptions::from_cli(cli);

  std::cout
      << "Figure 15: COSI and OOSI speedups over SMT (%)\n"
      << "paper averages: COSI 2T 7.5(NS)/9.8(AS), 4T 6.4(NS)/9.4(AS); "
         "OOSI 2T 8.2(NS)/13.0(AS), 4T 7.9(NS)/15.7(AS)\n\n";

  const struct {
    const char* label;
    SplitLevel split;
    CommPolicy comm;
  } configs[] = {
      {"COSI NS", SplitLevel::kCluster, CommPolicy::kNoSplit},
      {"COSI AS", SplitLevel::kCluster, CommPolicy::kAlwaysSplit},
      {"OOSI NS", SplitLevel::kOperation, CommPolicy::kNoSplit},
      {"OOSI AS", SplitLevel::kOperation, CommPolicy::kAlwaysSplit},
  };

  for (int threads : {2, 4}) {
    std::cout << threads << "-thread machine\n";
    Table table({"workload", "COSI NS", "COSI AS", "OOSI NS", "OOSI AS"});
    std::vector<double> avg(4, 0.0);
    int n = 0;
    for (const wl::WorkloadSpec& spec : wl::paper_workloads()) {
      const RunResult base =
          harness::run_workload(spec.name, threads, Technique::smt(), opt);
      std::vector<std::string> row{spec.name};
      for (std::size_t c = 0; c < 4; ++c) {
        Technique t{MergeLevel::kOperation, configs[c].split, configs[c].comm};
        const RunResult run =
            harness::run_workload(spec.name, threads, t, opt);
        const double s = speedup(run.ipc(), base.ipc());
        avg[c] += s;
        row.push_back(Table::pct(s));
      }
      ++n;
      table.add_row(std::move(row));
    }
    std::vector<std::string> avg_row{"avg"};
    for (double a : avg) avg_row.push_back(Table::pct(a / n));
    table.add_row(std::move(avg_row));
    if (cli.get_bool("csv", false))
      std::cout << table.to_csv() << "\n";
    else
      std::cout << table.to_text() << "\n";
  }
  std::cout << "Shape check: OOSI >= COSI on average; AS >= NS; the OOSI-COSI "
               "gap stays small (paper: 0.7-2.7% at 2T, 1.4-5.7% at 4T).\n";
  return 0;
}
