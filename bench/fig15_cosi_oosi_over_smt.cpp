// Figure 15: speedups of cluster-level (COSI) and operation-level (OOSI)
// split-issue over SMT, for 2-thread and 4-thread machines, NS and AS.
//
// All simulation points run through the parallel sweep engine; --jobs N
// picks the worker count (results are bit-identical for any N) and the raw
// per-point statistics land in a JSON trajectory file.
//
// Flags: --cc NAME, --cc-verify, --config FILE (base machine description),
//        --mem fixed|hierarchy (memory backend; default fixed),
//        --scale, --budget, --timeslice, --seed, --quick, --paper, --csv,
//        --jobs N, --json FILE (default BENCH_sweep.json),
//        --cache[=DIR]/--no-cache (result cache), --timeout MS, --retries N,
//        --shard I/N (run one round-robin slice and emit a shard document
//        for tools/vexmerge), --cache-gc SIZE (post-sweep cache eviction).
#include <iostream>
#include <vector>

#include "harness/shard.hpp"
#include "harness/sweep.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "workloads/workloads.hpp"

namespace {

const struct {
  vexsim::SplitLevel split;
  vexsim::CommPolicy comm;
} kConfigs[] = {
    {vexsim::SplitLevel::kCluster, vexsim::CommPolicy::kNoSplit},
    {vexsim::SplitLevel::kCluster, vexsim::CommPolicy::kAlwaysSplit},
    {vexsim::SplitLevel::kOperation, vexsim::CommPolicy::kNoSplit},
    {vexsim::SplitLevel::kOperation, vexsim::CommPolicy::kAlwaysSplit},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto opt = harness::ExperimentOptions::from_cli(cli);

  std::cout
      << "Figure 15: COSI and OOSI speedups over SMT (%)\n"
      << "paper averages: COSI 2T 7.5(NS)/9.8(AS), 4T 6.4(NS)/9.4(AS); "
         "OOSI 2T 8.2(NS)/13.0(AS), 4T 7.9(NS)/15.7(AS)\n\n";

  // Per thread count and workload: the SMT baseline followed by the four
  // split-issue variants — 5 points per (threads, workload) pair.
  std::vector<harness::SweepPoint> points;
  for (int threads : {2, 4}) {
    const std::string suffix = "/" + std::to_string(threads) + "T";
    for (const wl::WorkloadSpec& spec : wl::paper_workloads()) {
      points.push_back({spec.name + "/SMT" + suffix,
                        opt.machine(threads, Technique::smt()), spec.name,
                        opt});
      for (const auto& c : kConfigs) {
        const Technique t{MergeLevel::kOperation, c.split, c.comm};
        points.push_back({spec.name + "/" + t.name() + suffix,
                          opt.machine(threads, t), spec.name, opt});
      }
    }
  }
  const std::vector<RunResult> results =
      harness::run_sweep_and_dump(cli, "fig15_cosi_oosi_over_smt", points);

  if (harness::ShardSpec::from_cli(cli).active) {
    std::cout << "shard run: tables skipped; merge the shard JSONs with "
                 "tools/vexmerge\n";
    return 0;
  }

  for (int threads : {2, 4}) {
    const std::string suffix = "/" + std::to_string(threads) + "T";
    std::cout << threads << "-thread machine\n";
    Table table({"workload", "COSI NS", "COSI AS", "OOSI NS", "OOSI AS"});
    std::vector<double> avg(4, 0.0);
    int n = 0;
    for (const wl::WorkloadSpec& spec : wl::paper_workloads()) {
      const RunResult& base =
          harness::result_for(points, results, spec.name + "/SMT" + suffix);
      std::vector<std::string> row{spec.name};
      for (std::size_t c = 0; c < 4; ++c) {
        const Technique t{MergeLevel::kOperation, kConfigs[c].split,
                          kConfigs[c].comm};
        const RunResult& run = harness::result_for(
            points, results, spec.name + "/" + t.name() + suffix);
        const double s = speedup(run.ipc(), base.ipc());
        avg[c] += s;
        row.push_back(Table::pct(s));
      }
      ++n;
      table.add_row(std::move(row));
    }
    std::vector<std::string> avg_row{"avg"};
    for (double a : avg) avg_row.push_back(Table::pct(a / n));
    table.add_row(std::move(avg_row));
    if (cli.get_bool("csv", false))
      std::cout << table.to_csv() << "\n";
    else
      std::cout << table.to_text() << "\n";
  }
  std::cout << "Shape check: OOSI >= COSI on average; AS >= NS; the OOSI-COSI "
               "gap stays small (paper: 0.7-2.7% at 2T, 1.4-5.7% at 4T).\n";
  return 0;
}
