// Microbenchmark A5: software cost of one merge decision, per technique.
//
// The paper's "low cost" argument is about hardware; the software analogue
// we can measure is the work per cycle the merge engine does. Cluster-level
// collision checks (CSMT/CCSI) touch one occupancy word per cluster;
// operation-level checks (SMT/COSI/OOSI) count FU classes — visibly more
// work per decision, mirroring the hardware complexity ordering.
#include <benchmark/benchmark.h>

#include "arch/thread_context.hpp"
#include "core/merge_engine.hpp"
#include "isa/config.hpp"
#include "vasm/assembler.hpp"

namespace {

using namespace vexsim;

std::shared_ptr<const Program> dense_program() {
  // One instruction using all four clusters with mixed FU classes.
  Program p = assemble(
      "c0 add r1 = r2, r3 ; c0 mpyl r4 = r5, r6 ; c0 ldw r7 = 0x200[r0] ; "
      "c1 add r1 = r2, r3 ; c1 sub r4 = r5, r6 ; "
      "c2 mpyl r1 = r2, r3 ; c2 xor r4 = r5, r6 ; "
      "c3 stw 0x200[r0] = r1 ; c3 add r2 = r3, r4\n",
      "dense");
  return std::make_shared<const Program>(std::move(p));
}

void prime(ThreadContext& ctx) {
  IssueProgress& iss = ctx.issue;
  iss.active = true;
  iss.seq = 1;
  iss.dec = &ctx.current_decoded();
  // Prime exactly as refill_slot does: straight from the decode cache.
  iss.pending_ops = iss.dec->full_masks;
  iss.pending_clusters = iss.dec->used_cluster_mask;
  iss.pending_count = iss.dec->op_count;
}

void merge_decision(benchmark::State& state, Technique t) {
  MachineConfig cfg = MachineConfig::paper(2, t);
  cfg.validate();
  MergeEngine engine(cfg);
  auto prog = dense_program();
  ThreadContext a(0, prog), b(1, prog);
  ExecPacket packet;
  for (auto _ : state) {
    packet.clear(cfg.clusters);
    prime(a);
    prime(b);
    engine.try_select(a, 0, 0, packet);
    engine.try_select(b, 2, 1, packet);
    benchmark::DoNotOptimize(packet.ops.size());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_MergeDecision_CSMT(benchmark::State& s) {
  merge_decision(s, Technique::csmt());
}
void BM_MergeDecision_CCSI(benchmark::State& s) {
  merge_decision(s, Technique::ccsi(CommPolicy::kAlwaysSplit));
}
void BM_MergeDecision_SMT(benchmark::State& s) {
  merge_decision(s, Technique::smt());
}
void BM_MergeDecision_COSI(benchmark::State& s) {
  merge_decision(s, Technique::cosi(CommPolicy::kAlwaysSplit));
}
void BM_MergeDecision_OOSI(benchmark::State& s) {
  merge_decision(s, Technique::oosi(CommPolicy::kAlwaysSplit));
}

BENCHMARK(BM_MergeDecision_CSMT);
BENCHMARK(BM_MergeDecision_CCSI);
BENCHMARK(BM_MergeDecision_SMT);
BENCHMARK(BM_MergeDecision_COSI);
BENCHMARK(BM_MergeDecision_OOSI);

// Collision-logic primitives in isolation (the CL boxes of Figure 7).
void BM_ClusterCollision(benchmark::State& state) {
  std::uint32_t a = 0b0101, b = 0b1010;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster_collision(a, b));
    a = (a * 5) & 0xF;
    b = (b * 3 + 1) & 0xF;
  }
}
BENCHMARK(BM_ClusterCollision);

void BM_OperationCollision(benchmark::State& state) {
  ClusterResourceConfig limits;
  ResourceUse a, b;
  a.add(ops::alu(Opcode::kAdd, 0, 1, 2, 3));
  a.add(ops::mpyl(0, 4, 5, 6));
  b.add(ops::load(Opcode::kLdw, 0, 7, 8, 0));
  b.add(ops::alu(Opcode::kSub, 0, 1, 2, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(operation_collision(a, b, limits, 1));
  }
}
BENCHMARK(BM_OperationCollision);

}  // namespace
