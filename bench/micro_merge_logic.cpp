// Microbenchmark A5: software cost of one merge decision, per technique.
//
// The paper's "low cost" argument is about hardware; the software analogue
// we can measure is the work per cycle the merge engine does. Cluster-level
// collision checks (CSMT/CCSI) touch one occupancy word per cluster;
// operation-level checks (SMT/COSI/OOSI) count FU classes — visibly more
// work per decision, mirroring the hardware complexity ordering.
//
// Since the fused-engine rework, selection is sink-templated, so this bench
// also serves as the unit-level before/after probe for the fusion: each
// technique is timed against the reference PacketSink (materializes
// SelectedOps) and against a counting sink with the fused engine's shape
// (no packet body, an emit that only consumes the operation). The two sinks
// must make bit-identical selection decisions — checked on every run before
// any ratio is reported.
//
// Flags: --reps N (timing repetitions, best-of), --iters N (decisions per
//        rep), --quick, --json FILE (default BENCH_micro_merge.json).
//        The sweep-engine flags (--jobs, --cache) do not apply: this bench
//        measures single-threaded wall-clock, so every run re-measures.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "arch/thread_context.hpp"
#include "core/merge_engine.hpp"
#include "isa/config.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "vasm/assembler.hpp"

namespace {

using namespace vexsim;

// Keeps `v` live without a store: the optimizer cannot delete the timed
// selection work (the in-tree stand-in for benchmark::DoNotOptimize).
template <typename T>
inline void keep_alive(const T& v) {
  asm volatile("" : : "g"(v) : "memory");
}

std::shared_ptr<const Program> dense_program() {
  // One instruction using all four clusters with mixed FU classes.
  Program p = assemble(
      "c0 add r1 = r2, r3 ; c0 mpyl r4 = r5, r6 ; c0 ldw r7 = 0x200[r0] ; "
      "c1 add r1 = r2, r3 ; c1 sub r4 = r5, r6 ; "
      "c2 mpyl r1 = r2, r3 ; c2 xor r4 = r5, r6 ; "
      "c3 stw 0x200[r0] = r1 ; c3 add r2 = r3, r4\n",
      "dense");
  return std::make_shared<const Program>(std::move(p));
}

void prime(ThreadContext& ctx) {
  IssueProgress& iss = ctx.issue;
  iss.active = true;
  iss.seq = 1;
  iss.dec = &ctx.current_decoded();
  // Prime exactly as refill_slot does: straight from the decode cache.
  iss.pending_ops = iss.dec->full_masks;
  iss.pending_clusters = iss.dec->used_cluster_mask;
  iss.pending_count = iss.dec->op_count;
}

// The fused engine's sink shape: per-cluster resource accounting but no
// packet body — emit only consumes the operation. What the simulator's
// FusedSink does minus the execution itself, so the packet/counting delta
// isolates the cost of materializing SelectedOps.
struct CountingSink {
  std::array<ResourceUse, kMaxClusters> use{};
  int emitted = 0;

  [[nodiscard]] ResourceUse& used(std::size_t physical) {
    return use[physical];
  }
  void claim(std::size_t) {}
  void emit(const Operation& op, const DecodedOp&, int, int) {
    ++emitted;
    keep_alive(op);
  }
  void clear() {
    use.fill(ResourceUse{});
    emitted = 0;
  }
};

// Sink adapters with a uniform clear/select/selected surface for the timing
// loop.
struct PacketHolder {
  ExecPacket packet;
  int clusters = 0;
  void clear() { packet.clear(clusters); }
  void select(MergeEngine& e, ThreadContext& ctx, int rotation) {
    e.try_select(ctx, rotation, ctx.asid(), packet);
  }
  [[nodiscard]] int selected() const { return packet.op_count(); }
};

struct CountingHolder {
  CountingSink sink;
  void clear() { sink.clear(); }
  void select(MergeEngine& e, ThreadContext& ctx, int rotation) {
    e.select(ctx, rotation, sink);
  }
  [[nodiscard]] int selected() const { return sink.emitted; }
};

// Two-thread merge step (both contexts re-primed each iteration), timed for
// `iters` iterations; returns seconds.
template <typename SinkHolder>
double time_selects(MergeEngine& engine, ThreadContext& a, ThreadContext& b,
                    SinkHolder& holder, long iters) {
  const auto t0 = std::chrono::steady_clock::now();
  for (long i = 0; i < iters; ++i) {
    holder.clear();
    prime(a);
    prime(b);
    holder.select(engine, a, 0);
    holder.select(engine, b, 2);
    keep_alive(holder.selected());
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct TechPoint {
  std::string label;
  Technique technique;
};

struct TechResult {
  double packet_ns = 0;    // per decision, PacketSink
  double counting_ns = 0;  // per decision, CountingSink
  int ops_per_decision = 0;
};

// Both sinks must produce the same selection decisions from the same primed
// state: same per-thread result fields, same issue-progress afterstate, and
// as many packet ops as counted emits.
void check_identity(const std::string& label, MergeEngine& engine,
                    const MachineConfig& cfg, ThreadContext& a,
                    ThreadContext& b) {
  ExecPacket packet;
  packet.clear(cfg.clusters);
  prime(a);
  prime(b);
  const SelectResult pa = engine.try_select(a, 0, 0, packet);
  const SelectResult pb = engine.try_select(b, 2, 1, packet);
  const IssueProgress issue_a = a.issue, issue_b = b.issue;

  CountingSink sink;
  sink.clear();
  prime(a);
  prime(b);
  const SelectResult ca = engine.select(a, 0, sink);
  const SelectResult cb = engine.select(b, 2, sink);

  auto same = [](const SelectResult& x, const SelectResult& y) {
    return x.ops_selected == y.ops_selected &&
           x.selected_any == y.selected_any && x.last_part == y.last_part;
  };
  VEXSIM_CHECK_MSG(same(pa, ca) && same(pb, cb),
                   label << ": sink-dependent selection result");
  VEXSIM_CHECK_MSG(issue_a.pending_count == a.issue.pending_count &&
                       issue_a.pending_ops == a.issue.pending_ops &&
                       issue_a.pending_clusters == a.issue.pending_clusters &&
                       issue_b.pending_count == b.issue.pending_count &&
                       issue_b.pending_ops == b.issue.pending_ops &&
                       issue_b.pending_clusters == b.issue.pending_clusters,
                   label << ": sink-dependent issue progress");
  VEXSIM_CHECK_MSG(packet.op_count() == sink.emitted,
                   label << ": packet op count != counted emits");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const long iters = cli.get_int("iters", quick ? 20'000 : 200'000);
  const int reps = static_cast<int>(cli.get_int("reps", quick ? 2 : 5));
  VEXSIM_CHECK_MSG(iters >= 1, "--iters must be >= 1");
  VEXSIM_CHECK_MSG(reps >= 1, "--reps must be >= 1");

  const std::vector<TechPoint> points = {
      {"CSMT", Technique::csmt()},
      {"CCSI", Technique::ccsi(CommPolicy::kAlwaysSplit)},
      {"SMT", Technique::smt()},
      {"COSI", Technique::cosi(CommPolicy::kAlwaysSplit)},
      {"OOSI", Technique::oosi(CommPolicy::kAlwaysSplit)},
  };

  std::cout << "Merge-decision cost (" << iters << " iterations x " << reps
            << " reps, best-of, 2 threads/decision)\n\n";

  auto prog = dense_program();
  std::vector<TechResult> results;
  for (const TechPoint& p : points) {
    MachineConfig cfg = MachineConfig::paper(2, p.technique);
    cfg.validate();
    MergeEngine engine(cfg);
    ThreadContext a(0, prog), b(1, prog);

    check_identity(p.label, engine, cfg, a, b);

    TechResult r;
    {
      ExecPacket probe;
      probe.clear(cfg.clusters);
      prime(a);
      prime(b);
      engine.try_select(a, 0, 0, probe);
      engine.try_select(b, 2, 1, probe);
      r.ops_per_decision = probe.op_count();
    }

    PacketHolder packet;
    packet.clusters = cfg.clusters;
    CountingHolder counting;
    double packet_s = 1e300, counting_s = 1e300;
    for (int i = 0; i < reps; ++i) {
      packet_s = std::min(packet_s, time_selects(engine, a, b, packet, iters));
      counting_s =
          std::min(counting_s, time_selects(engine, a, b, counting, iters));
    }
    // Two decisions (one per thread) per iteration.
    r.packet_ns = packet_s / static_cast<double>(2 * iters) * 1e9;
    r.counting_ns = counting_s / static_cast<double>(2 * iters) * 1e9;
    results.push_back(r);
  }

  Table table({"technique", "ops/decision", "ns/decision packet",
               "ns/decision counting", "counting/packet"});
  Json arr = Json::array();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const TechPoint& p = points[i];
    const TechResult& r = results[i];
    table.add_row({p.label, std::to_string(r.ops_per_decision),
                   Table::fmt(r.packet_ns, 1), Table::fmt(r.counting_ns, 1),
                   Table::fmt(r.counting_ns / r.packet_ns, 2)});
    Json pj = Json::object();
    pj.set("technique", p.label)
        .set("ops_per_decision", r.ops_per_decision)
        .set("ns_per_decision_packet", r.packet_ns)
        .set("ns_per_decision_counting", r.counting_ns)
        .set("counting_over_packet", r.counting_ns / r.packet_ns);
    arr.push(std::move(pj));
  }

  // Collision-logic primitives in isolation (the CL boxes of Figure 7).
  const long prim_iters = iters * 10;
  double cluster_ns = 0, operation_ns = 0;
  {
    std::uint32_t x = 0b0101, y = 0b1010;
    bool acc = false;
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      for (long k = 0; k < prim_iters; ++k) {
        acc ^= cluster_collision(x, y);
        x = (x * 5) & 0xF;
        y = (y * 3 + 1) & 0xF;
      }
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    keep_alive(acc);
    cluster_ns = best / static_cast<double>(prim_iters) * 1e9;
  }
  {
    ClusterResourceConfig limits;
    ResourceUse ra, rb;
    ra.add(ops::alu(Opcode::kAdd, 0, 1, 2, 3));
    ra.add(ops::mpyl(0, 4, 5, 6));
    rb.add(ops::load(Opcode::kLdw, 0, 7, 8, 0));
    rb.add(ops::alu(Opcode::kSub, 0, 1, 2, 3));
    bool acc = false;
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      for (long k = 0; k < prim_iters; ++k) {
        acc ^= operation_collision(ra, rb, limits, 1);
        keep_alive(ra);
      }
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    keep_alive(acc);
    operation_ns = best / static_cast<double>(prim_iters) * 1e9;
  }

  Json doc = Json::object();
  doc.set("experiment", "micro_merge")
      .set("iters", iters)
      .set("reps", reps)
      .set("ns_cluster_collision", cluster_ns)
      .set("ns_operation_collision", operation_ns)
      .set("points", std::move(arr));
  write_json_file(cli.get("json", "BENCH_micro_merge.json"), std::move(doc));

  std::cout << table.to_text();
  std::cout << "\nPrimitives: cluster_collision " << Table::fmt(cluster_ns, 2)
            << " ns, operation_collision " << Table::fmt(operation_ns, 2)
            << " ns\n";
  std::cout << "\nSelection decisions are verified bit-identical between the "
               "packet and counting sinks before any time is reported.\n";
  return 0;
}
