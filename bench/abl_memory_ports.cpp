// Ablation A2: memory ports per cluster and the buffered-store drain stalls
// of Section V-D.
//
// Split-issue defers stores into buffers that drain at last-part; with one
// port per cluster the drain can collide with same-cycle memory operations
// and stall the pipeline. This ablation measures those stalls and what a
// second port would buy.
#include <iostream>

#include "harness/experiments.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto opt = harness::ExperimentOptions::from_cli(cli);

  std::cout << "Ablation: memory ports vs buffered-store drain stalls "
               "(4-thread machine)\n\n";
  Table table({"workload", "technique", "ports", "IPC", "drain-stall cyc",
               "stall frac"});
  for (const char* wname : {"llmm", "mmhh", "hhhh"}) {
    for (const Technique& t : {Technique::ccsi(CommPolicy::kAlwaysSplit),
                               Technique::oosi(CommPolicy::kAlwaysSplit)}) {
      for (int ports : {1, 2}) {
        MachineConfig cfg = MachineConfig::paper(4, t);
        cfg.cluster.mem_units = ports;
        const RunResult r = harness::run_workload_on(cfg, wname, opt);
        table.add_row(
            {wname, t.name(), std::to_string(ports), Table::fmt(r.ipc()),
             std::to_string(r.sim.memport_stall_cycles),
             Table::pct(static_cast<double>(r.sim.memport_stall_cycles) /
                        static_cast<double>(r.sim.cycles))});
      }
    }
  }
  std::cout << table.to_text();
  std::cout << "\nShape check: drain stalls are a small fraction of cycles "
               "(the paper treats them as rare); a second port removes them "
               "for a modest IPC gain.\n";
  return 0;
}
