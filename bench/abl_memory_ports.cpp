// Ablation A2: memory ports per cluster and the buffered-store drain stalls
// of Section V-D.
//
// Split-issue defers stores into buffers that drain at last-part; with one
// port per cluster the drain can collide with same-cycle memory operations
// and stall the pipeline. This ablation measures those stalls and what a
// second port would buy.
//
// All simulation points run through the parallel sweep engine; --jobs N
// picks the worker count (results are bit-identical for any N) and the raw
// per-point statistics land in a JSON trajectory file.
//
// Flags: --cc NAME, --cc-verify, --config FILE (base machine description),
//        --mem fixed|hierarchy (memory backend; default fixed),
//        --scale, --budget, --timeslice, --seed, --quick, --paper, --csv,
//        --jobs N, --progress N, --flush N, --json FILE,
//        --cache[=DIR]/--no-cache (result cache), --timeout MS, --retries N,
//        --shard I/N (run one round-robin slice and emit a shard document
//        for tools/vexmerge), --cache-gc SIZE (post-sweep cache eviction).
#include <iostream>
#include <vector>

#include "harness/shard.hpp"
#include "harness/sweep.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "workloads/workloads.hpp"

namespace {

std::string label_of(const char* wname, const vexsim::Technique& t,
                     int ports) {
  return std::string(wname) + "/" + t.name() + "/p" + std::to_string(ports);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto opt = harness::ExperimentOptions::from_cli(cli);

  std::cout << "Ablation: memory ports vs buffered-store drain stalls "
               "(4-thread machine)\n\n";

  const std::vector<const char*> workloads = {"llmm", "mmhh", "hhhh"};
  const std::vector<Technique> techniques = {
      Technique::ccsi(CommPolicy::kAlwaysSplit),
      Technique::oosi(CommPolicy::kAlwaysSplit)};
  std::vector<harness::SweepPoint> points;
  for (const char* wname : workloads) {
    for (const Technique& t : techniques) {
      for (int ports : {1, 2}) {
        MachineConfig cfg = opt.machine(4, t);
        cfg.cluster.mem_units = ports;
        points.push_back({label_of(wname, t, ports), cfg, wname, opt});
      }
    }
  }
  const std::vector<RunResult> results =
      harness::run_sweep_and_dump(cli, "abl_memory_ports", points);

  if (harness::ShardSpec::from_cli(cli).active) {
    std::cout << "shard run: tables skipped; merge the shard JSONs with "
                 "tools/vexmerge\n";
    return 0;
  }

  Table table({"workload", "technique", "ports", "IPC", "drain-stall cyc",
               "stall frac"});
  for (const char* wname : workloads) {
    for (const Technique& t : techniques) {
      for (int ports : {1, 2}) {
        const RunResult& r =
            harness::result_for(points, results, label_of(wname, t, ports));
        table.add_row(
            {wname, t.name(), std::to_string(ports), Table::fmt(r.ipc()),
             std::to_string(r.sim.memport_stall_cycles),
             Table::pct(static_cast<double>(r.sim.memport_stall_cycles) /
                        static_cast<double>(r.sim.cycles))});
      }
    }
  }
  if (cli.get_bool("csv", false))
    std::cout << table.to_csv();
  else
    std::cout << table.to_text();
  std::cout << "\nShape check: drain stalls are a small fraction of cycles "
               "(the paper treats them as rare); a second port removes them "
               "for a modest IPC gain.\n";
  return 0;
}
