// Ablation A5: synthetic-workload scenario sweep — the experiment space the
// fixed Figure-13 suite cannot reach.
//
// Sweeps a continuous ILP gradient × {2,4,6,8} hardware contexts ×
// {symmetric 4x4, asymmetric 8+4+2+2} cluster geometries across all eight
// multithreading techniques. Each point's workload is a generated mix of
// per-context synthetic programs (one seed per context) at the given ILP
// level, so context counts beyond the paper's four and lopsided machines
// get exercised with controlled, reproducible pressure.
//
// Cluster renaming is off for both geometries (required on the asymmetric
// machine — rotation would land wide bundles on narrow clusters — and kept
// off on the symmetric one so the geometry axis is the only difference).
//
// All points run through the parallel sweep engine; results are
// bit-identical for any --jobs value and land in BENCH_abl_synth.json.
//
// Flags: --cc NAME, --cc-verify, --config FILE (base machine description),
//        --mem fixed|hierarchy (memory backend; default fixed),
//        --scale, --budget, --timeslice, --seed, --quick, --paper,
//        --jobs N, --progress N, --json FILE (default BENCH_abl_synth.json),
//        --cache[=DIR]/--no-cache (result cache), --timeout MS, --retries N,
//        --shard I/N (run one round-robin slice and emit a shard document
//        for tools/vexmerge), --cache-gc SIZE (post-sweep cache eviction).
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "harness/shard.hpp"
#include "harness/sweep.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"

namespace {

std::string ilp_token(double ilp) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << ilp;
  return os.str();
}

// One synthetic program per context: same ILP level, distinct seeds.
std::string synth_mix(double ilp, int contexts) {
  std::string mix;
  for (int k = 1; k <= contexts; ++k) {
    if (k > 1) mix += "+";
    mix += "synth:i" + ilp_token(ilp) + "-m0.20-b0.05-s" + std::to_string(k);
  }
  return mix;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  harness::ExperimentOptions opt = harness::ExperimentOptions::from_cli(cli);
  if (cli.get_bool("quick", false) && !cli.has("budget")) {
    // 128 points: keep the smoke run snappy.
    opt.budget = 20'000;
    opt.timeslice = 10'000;
  }

  const std::vector<double> ilps = cli.get_bool("quick", false)
                                       ? std::vector<double>{0.2, 0.8}
                                       : std::vector<double>{0.1, 0.5, 0.9};
  const std::vector<int> contexts = {2, 4, 6, 8};

  auto make_cfg = [&opt](bool asym, int threads, Technique t) {
    MachineConfig cfg = opt.machine(threads, t);
    cfg.cluster_renaming = false;
    if (asym)
      cfg.cluster_overrides = {ClusterResourceConfig::for_issue_width(8),
                               ClusterResourceConfig::for_issue_width(4),
                               ClusterResourceConfig::for_issue_width(2),
                               ClusterResourceConfig::for_issue_width(2)};
    cfg.validate();
    return cfg;
  };

  std::cout << "Ablation: synthetic ILP gradient x context count x geometry "
               "(all eight techniques)\n\n";

  std::vector<harness::SweepPoint> points;
  for (const bool asym : {false, true}) {
    for (const double ilp : ilps) {
      for (const int threads : contexts) {
        for (const Technique& t : Technique::kAll) {
          MachineConfig cfg = make_cfg(asym, threads, t);
          const std::string label = "i" + ilp_token(ilp) + "/" +
                                    std::to_string(threads) + "T/" +
                                    cfg.geometry_name() + "/" + t.name();
          points.push_back(
              {label, std::move(cfg), synth_mix(ilp, threads), opt});
        }
      }
    }
  }
  const std::vector<RunResult> results =
      harness::run_sweep_and_dump(cli, "abl_synth", points);

  if (harness::ShardSpec::from_cli(cli).active) {
    std::cout << "shard run: tables skipped; merge the shard JSONs with "
                 "tools/vexmerge\n";
    return 0;
  }

  for (const bool asym : {false, true}) {
    const std::string geom = asym ? "8+4+2+2" : "4x4";
    std::cout << "Geometry " << geom << ":\n";
    std::vector<std::string> headers{"ilp", "contexts"};
    for (const Technique& t : Technique::kAll) headers.push_back(t.name());
    Table table(headers);
    for (const double ilp : ilps) {
      for (const int threads : contexts) {
        std::vector<std::string> row{ilp_token(ilp), std::to_string(threads)};
        for (const Technique& t : Technique::kAll) {
          const std::string label = "i" + ilp_token(ilp) + "/" +
                                    std::to_string(threads) + "T/" + geom +
                                    "/" + t.name();
          row.push_back(
              Table::fmt(harness::result_for(points, results, label).ipc()));
        }
        table.add_row(std::move(row));
      }
    }
    std::cout << table.to_text() << "\n";
  }

  std::cout << "Shape check: IPC grows with the ILP dial; split-issue gains "
               "concentrate at low ILP and high context counts, where bundle "
               "conflicts dominate; the asymmetric machine leans harder on "
               "merging (narrow clusters congest first).\n";
  return 0;
}
