// Ablation A6: compiler pass-pipeline quality — greedy vs cost-model
// cluster assignment vs cost-model + software pipelining, across the paper
// mixes and a synthetic ILP gradient on the symmetric and asymmetric
// machines.
//
// Every point reports both the machine's view (IPC) and the compiler's
// (static ops/instruction, inter-cluster copies, software-pipelined loop
// count) — the "compile" object in BENCH_abl_compiler.json — so compile
// quality lands in the bench trajectories next to the performance it
// produces.
//
// --check-quality turns the run into the CI compile-quality gate: on the
// high-ILP synthetic points (ILP dial >= 0.8) the cost-model assigner must
// not regress static ops/instruction against greedy, with or without
// software pipelining. Exit status 1 lists the violations.
//
// All points run through the parallel sweep engine; results are
// bit-identical for any --jobs value and land in BENCH_abl_compiler.json.
//
// Flags: --cc NAME, --cc-verify, --config FILE (base machine description),
//        --mem fixed|hierarchy (memory backend; default fixed),
//        --scale, --budget, --timeslice, --seed, --quick, --paper,
//        --jobs N, --progress N, --json FILE, --cache[=DIR]/--no-cache,
//        --timeout MS, --retries N, --check-quality, --shard I/N (run one
//        round-robin slice and emit a shard document for tools/vexmerge;
//        skips tables and the quality gate), --cache-gc SIZE.
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "harness/shard.hpp"
#include "harness/sweep.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"

namespace {

constexpr const char* kVariants[] = {"greedy", "cost", "cost_swp"};

std::string ilp_token(double ilp) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << ilp;
  return os.str();
}

// One synthetic program per context: the ILP dial under test, moderate
// memory traffic, and a pipeline-parallel fraction so the modulo scheduler
// has recurrence headroom to work with.
std::string synth_mix(double ilp, int contexts) {
  std::string mix;
  for (int k = 1; k <= contexts; ++k) {
    if (k > 1) mix += "+";
    mix += "synth:i" + ilp_token(ilp) + "-m0.20-p0.5-s" + std::to_string(k);
  }
  return mix;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  harness::ExperimentOptions base_opt =
      harness::ExperimentOptions::from_cli(cli);
  if (cli.get_bool("quick", false) && !cli.has("budget")) {
    base_opt.budget = 30'000;
    base_opt.timeslice = 10'000;
  }

  const bool quick = cli.get_bool("quick", false);
  const std::vector<std::string> mixes =
      quick ? std::vector<std::string>{"llmm", "hhhh"}
            : std::vector<std::string>{"llll", "lmmh", "mmmm", "llmm", "llmh",
                                       "llhh", "lmhh", "mmhh", "hhhh"};
  const std::vector<double> ilps =
      quick ? std::vector<double>{0.5, 0.8, 0.95}
            : std::vector<double>{0.2, 0.5, 0.8, 0.9, 0.95};

  auto sym_cfg = [&base_opt] {
    MachineConfig cfg =
        base_opt.machine(4, Technique::ccsi(CommPolicy::kNoSplit));
    cfg.validate();
    return cfg;
  };
  auto asym_cfg = [&base_opt] {
    MachineConfig cfg =
        base_opt.machine(4, Technique::ccsi(CommPolicy::kNoSplit));
    cfg.cluster_renaming = false;
    cfg.cluster_overrides = {ClusterResourceConfig::for_issue_width(8),
                             ClusterResourceConfig::for_issue_width(4),
                             ClusterResourceConfig::for_issue_width(2),
                             ClusterResourceConfig::for_issue_width(2)};
    cfg.validate();
    return cfg;
  };

  std::cout << "Ablation: compiler pipeline (greedy vs cost-model vs "
               "+software-pipelining), CCSI-NS, 4 contexts\n\n";

  std::vector<harness::SweepPoint> points;
  auto add_point = [&points, &base_opt](const MachineConfig& cfg,
                                        const std::string& label_base,
                                        const std::string& workload) {
    for (const char* variant : kVariants) {
      harness::ExperimentOptions opt = base_opt;
      opt.compiler = cc::CompilerOptions::parse(variant);
      points.push_back(harness::SweepPoint{label_base + "/" + variant, cfg,
                                           workload, opt});
    }
  };
  for (const std::string& mix : mixes) add_point(sym_cfg(), mix, mix);
  for (const double ilp : ilps) {
    add_point(sym_cfg(), "i" + ilp_token(ilp) + "/4x4", synth_mix(ilp, 4));
    add_point(asym_cfg(), "i" + ilp_token(ilp) + "/8+4+2+2",
              synth_mix(ilp, 4));
  }

  const std::vector<RunResult> results =
      harness::run_sweep_and_dump(cli, "abl_compiler", points);

  if (harness::ShardSpec::from_cli(cli).active) {
    std::cout << "shard run: tables skipped; merge the shard JSONs with "
                 "tools/vexmerge\n";
    return 0;
  }

  std::vector<std::string> headers{"workload"};
  for (const char* variant : kVariants) {
    headers.push_back(std::string(variant) + " o/i");
    headers.push_back(std::string(variant) + " ipc");
  }
  headers.emplace_back("swp loops");
  Table table(headers);
  std::vector<std::string> label_bases;
  for (const std::string& mix : mixes) label_bases.push_back(mix);
  for (const double ilp : ilps) {
    label_bases.push_back("i" + ilp_token(ilp) + "/4x4");
    label_bases.push_back("i" + ilp_token(ilp) + "/8+4+2+2");
  }
  for (const std::string& base : label_bases) {
    std::vector<std::string> row{base};
    std::uint64_t swp_loops = 0;
    for (const char* variant : kVariants) {
      const RunResult& r =
          harness::result_for(points, results, base + "/" + variant);
      row.push_back(Table::fmt(r.compile.ops_per_instruction()));
      row.push_back(Table::fmt(r.ipc()));
      swp_loops = std::max(swp_loops, r.compile.swp_loops);
    }
    row.push_back(std::to_string(swp_loops));
    table.add_row(std::move(row));
  }
  std::cout << table.to_text() << "\n";

  std::cout << "Shape check: the cost model shortens schedules where greedy "
               "overloads a class or a narrow cluster (asymmetric rows); "
               "software pipelining converts list-schedule stalls in "
               "recurrence-light loops into kernel overlap, which shows up "
               "as both denser static code and higher IPC.\n";

  if (!cli.get_bool("check-quality", false)) return 0;

  // Compile-quality gate: on the high-ILP synthetic gradient the
  // cost-model pipelines must not regress static density against greedy.
  int violations = 0;
  for (const double ilp : ilps) {
    if (ilp < 0.8) continue;
    for (const char* geom : {"4x4", "8+4+2+2"}) {
      const std::string base = "i" + ilp_token(ilp) + "/" + geom;
      const double greedy_opi =
          harness::result_for(points, results, base + "/greedy")
              .compile.ops_per_instruction();
      for (const char* variant : {"cost", "cost_swp"}) {
        const double opi =
            harness::result_for(points, results, base + "/" + variant)
                .compile.ops_per_instruction();
        if (opi + 1e-9 < greedy_opi) {
          std::cerr << "compile-quality violation: " << base << "/" << variant
                    << " ops/instruction " << opi << " < greedy "
                    << greedy_opi << "\n";
          ++violations;
        }
      }
    }
  }
  if (violations > 0) {
    std::cerr << violations << " compile-quality violation(s)\n";
    return 1;
  }
  std::cout << "compile-quality gate: cost-model >= greedy ops/instruction "
               "on every high-ILP synthetic point\n";
  return 0;
}
