// Ablation A3: memory backend — the seed's flat miss penalty vs the
// MSHR/L2/DRAM hierarchy.
//
// The paper charges every L1 miss a flat 20 cycles. The hierarchy backend
// replaces that with bounded MSHRs (coalescing + structural stalls), a
// shared inclusive L2, and banked DRAM with row-buffer timing. This
// ablation walks a cache-hostility gradient — paper mixes that mostly fit
// the 64 KB L1, then synthetic chases with growing footprints (f-dial),
// then regular strided streams (st-dial) — and shows where the flat
// penalty stops being a good model: L2-resident footprints are *cheaper*
// than the flat charge (12 < 20 cycles) while DRAM-bound chases are far
// more expensive, and strided streams win back row-buffer hits that a
// random chase never sees.
//
// All simulation points run through the parallel sweep engine; --jobs N
// picks the worker count (results are bit-identical for any N) and the raw
// per-point statistics land in a JSON trajectory file (hierarchy points
// carry a "memory" block with MSHR/L2/DRAM counters).
//
// Flags: --mem fixed|hierarchy (ignored here: the ablation runs both),
//        --cc NAME, --cc-verify, --config FILE (base machine description),
//        --scale, --budget, --timeslice, --seed, --quick, --paper, --csv,
//        --jobs N, --progress N, --flush N, --json FILE,
//        --cache[=DIR]/--no-cache (result cache), --timeout MS, --retries N,
//        --shard I/N (run one round-robin slice and emit a shard document
//        for tools/vexmerge), --cache-gc SIZE (post-sweep cache eviction).
#include <iostream>
#include <string>
#include <vector>

#include "harness/shard.hpp"
#include "harness/sweep.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "workloads/workloads.hpp"

namespace {

struct GradientPoint {
  const char* label;     // table row name
  const char* workload;  // registry mix or synth spec
};

// Cache hostility rises top to bottom: paper mixes, then data-dependent
// chases over growing pools, then regular strides over the largest pool.
const GradientPoint kGradient[] = {
    {"llmm", "llmm"},
    {"hhhh", "hhhh"},
    {"chase-f64", "synth:i0.5-m0.5-s11-f64"},
    {"chase-f256", "synth:i0.5-m0.5-s11-f256"},
    {"chase-f1024", "synth:i0.5-m0.5-s11-f1024"},
    {"stream-f1024-st64", "synth:i0.5-m0.5-s11-f1024-st64"},
    {"stream-f1024-st4096", "synth:i0.5-m0.5-s11-f1024-st4096"},
};

std::string label_of(const GradientPoint& g, vexsim::MemBackendKind mem) {
  return std::string(g.label) + "/" + std::string(to_string(mem));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto opt = harness::ExperimentOptions::from_cli(cli);

  std::cout << "Ablation: flat miss penalty vs MSHR/L2/DRAM hierarchy "
               "(4-thread CCSI-AS machine)\n\n";

  const Technique tech = Technique::ccsi(CommPolicy::kAlwaysSplit);
  std::vector<harness::SweepPoint> points;
  for (const GradientPoint& g : kGradient) {
    for (const MemBackendKind mem :
         {MemBackendKind::kFixed, MemBackendKind::kHierarchy}) {
      MachineConfig cfg = opt.machine(4, tech);
      cfg.memory.backend = mem;
      points.push_back({label_of(g, mem), cfg, g.workload, opt});
    }
  }
  const std::vector<RunResult> results =
      harness::run_sweep_and_dump(cli, "abl_memory", points);

  if (harness::ShardSpec::from_cli(cli).active) {
    std::cout << "shard run: tables skipped; merge the shard JSONs with "
                 "tools/vexmerge\n";
    return 0;
  }

  Table table({"workload", "IPC fixed", "IPC hier", "delta", "L1d miss%",
               "L2 hit%", "DRAM acc", "DRAM row-hit%", "MSHR stalls"});
  for (const GradientPoint& g : kGradient) {
    const RunResult& fixed = harness::result_for(
        points, results, label_of(g, MemBackendKind::kFixed));
    const RunResult& hier = harness::result_for(
        points, results, label_of(g, MemBackendKind::kHierarchy));
    const mem::MemoryStats& m = hier.memory;
    const double l2_hit_rate = 1.0 - m.l2.miss_rate();
    table.add_row(
        {g.label, Table::fmt(fixed.ipc()), Table::fmt(hier.ipc()),
         Table::pct(hier.ipc() / fixed.ipc() - 1.0),
         Table::pct(hier.dcache.miss_rate()),
         m.l2.accesses() == 0 ? "-" : Table::pct(l2_hit_rate),
         std::to_string(m.dram.accesses()),
         m.dram.accesses() == 0 ? "-" : Table::pct(m.dram.row_hit_rate()),
         std::to_string(m.imshr.full_stalls + m.dmshr.full_stalls)});
  }
  if (cli.get_bool("csv", false))
    std::cout << table.to_csv();
  else
    std::cout << table.to_text();
  std::cout << "\nShape check: mixes whose misses fall straight through to "
               "DRAM pay roughly double the flat 20-cycle charge and slow "
               "down a few percent; once the footprint spills past the L1 "
               "the shared L2 absorbs the re-references at 12 cycles and "
               "the hierarchy pulls ahead; the short-stride stream is the "
               "one shape that earns substantial DRAM row-buffer hits.\n";
  return 0;
}
