// Ablation A4: machine geometry sweep — how the CCSI gain over CSMT moves
// with cluster count and per-cluster issue width.
//
// Intuition from the paper: more clusters = more independent bundles =
// more opportunities for cluster-level split; wider clusters reduce
// conflicts and shrink the gain.
//
// All simulation points run through the parallel sweep engine; --jobs N
// picks the worker count (results are bit-identical for any N) and the raw
// per-point statistics land in a JSON trajectory file.
//
// Flags: --cc NAME, --cc-verify, --config FILE (base machine description),
//        --mem fixed|hierarchy (memory backend; default fixed),
//        --scale, --budget, --timeslice, --seed, --quick, --paper,
//        --jobs N, --json FILE (default BENCH_sweep.json),
//        --cache[=DIR]/--no-cache (result cache), --timeout MS, --retries N,
//        --shard I/N (run one round-robin slice and emit a shard document
//        for tools/vexmerge), --cache-gc SIZE (post-sweep cache eviction).
#include <algorithm>
#include <iostream>
#include <vector>

#include "harness/shard.hpp"
#include "harness/sweep.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto opt = harness::ExperimentOptions::from_cli(cli);

  std::cout << "Ablation: geometry sweep (4 threads, workloads llll and "
               "hhhh)\n\n";

  auto make_cfg = [&opt](Technique t, int clusters, int issue) {
    MachineConfig cfg = opt.machine(4, t);
    cfg.clusters = clusters;
    cfg.cluster.issue_slots = issue;
    cfg.cluster.alus = issue;
    cfg.cluster.muls = std::max(1, issue / 2);
    cfg.cluster.mem_units = 1;
    cfg.validate();
    return cfg;
  };

  // Per (workload, geometry): the CSMT baseline followed by CCSI AS.
  std::vector<harness::SweepPoint> points;
  for (const char* wname : {"llll", "hhhh"}) {
    for (int clusters : {2, 4}) {
      for (int issue : {2, 4}) {
        const std::string geom = std::string(wname) + "/" +
                                 std::to_string(clusters) + "x" +
                                 std::to_string(issue);
        points.push_back({geom + "/CSMT",
                          make_cfg(Technique::csmt(), clusters, issue), wname,
                          opt});
        points.push_back(
            {geom + "/CCSI AS",
             make_cfg(Technique::ccsi(CommPolicy::kAlwaysSplit), clusters,
                      issue),
             wname, opt});
      }
    }
  }
  const std::vector<RunResult> results =
      harness::run_sweep_and_dump(cli, "abl_geometry", points);

  if (harness::ShardSpec::from_cli(cli).active) {
    std::cout << "shard run: tables skipped; merge the shard JSONs with "
                 "tools/vexmerge\n";
    return 0;
  }

  Table table({"workload", "clusters", "issue/cluster", "CSMT IPC",
               "CCSI AS IPC", "CCSI gain"});
  for (const char* wname : {"llll", "hhhh"}) {
    for (int clusters : {2, 4}) {
      for (int issue : {2, 4}) {
        const std::string geom = std::string(wname) + "/" +
                                 std::to_string(clusters) + "x" +
                                 std::to_string(issue);
        const RunResult& base =
            harness::result_for(points, results, geom + "/CSMT");
        const RunResult& ccsi =
            harness::result_for(points, results, geom + "/CCSI AS");
        table.add_row({wname, std::to_string(clusters), std::to_string(issue),
                       Table::fmt(base.ipc()), Table::fmt(ccsi.ipc()),
                       Table::pct(speedup(ccsi.ipc(), base.ipc()))});
      }
    }
  }
  std::cout << table.to_text();
  std::cout << "\nShape check: the split-issue gain grows with cluster count "
               "(more bundles to split across).\n";
  return 0;
}
