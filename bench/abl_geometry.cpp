// Ablation A4: machine geometry sweep — how the CCSI gain over CSMT moves
// with cluster count and per-cluster issue width.
//
// Intuition from the paper: more clusters = more independent bundles =
// more opportunities for cluster-level split; wider clusters reduce
// conflicts and shrink the gain.
#include <iostream>

#include "harness/experiments.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto opt = harness::ExperimentOptions::from_cli(cli);

  std::cout << "Ablation: geometry sweep (4 threads, workloads llll and "
               "hhhh)\n\n";
  Table table({"workload", "clusters", "issue/cluster", "CSMT IPC",
               "CCSI AS IPC", "CCSI gain"});
  for (const char* wname : {"llll", "hhhh"}) {
    for (int clusters : {2, 4}) {
      for (int issue : {2, 4}) {
        auto make_cfg = [&](Technique t) {
          MachineConfig cfg = MachineConfig::paper(4, t);
          cfg.clusters = clusters;
          cfg.cluster.issue_slots = issue;
          cfg.cluster.alus = issue;
          cfg.cluster.muls = std::max(1, issue / 2);
          cfg.cluster.mem_units = 1;
          cfg.validate();
          return cfg;
        };
        const RunResult base = harness::run_workload_on(
            make_cfg(Technique::csmt()), wname, opt);
        const RunResult ccsi = harness::run_workload_on(
            make_cfg(Technique::ccsi(CommPolicy::kAlwaysSplit)), wname, opt);
        table.add_row({wname, std::to_string(clusters), std::to_string(issue),
                       Table::fmt(base.ipc()), Table::fmt(ccsi.ipc()),
                       Table::pct(speedup(ccsi.ipc(), base.ipc()))});
      }
    }
  }
  std::cout << table.to_text();
  std::cout << "\nShape check: the split-issue gain grows with cluster count "
               "(more bundles to split across).\n";
  return 0;
}
