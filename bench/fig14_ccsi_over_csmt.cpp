// Figure 14: speedup of cluster-level split-issue (CCSI) over CSMT for the
// 2-thread and 4-thread machines, under both communication policies
// (NS = no split of send/recv instructions, AS = always split).
//
// All simulation points run through the parallel sweep engine; --jobs N
// picks the worker count (results are bit-identical for any N) and the raw
// per-point statistics land in a JSON trajectory file.
//
// Flags: --cc NAME, --cc-verify, --config FILE (base machine description),
//        --mem fixed|hierarchy (memory backend; default fixed),
//        --scale, --budget, --timeslice, --seed, --quick, --paper, --csv,
//        --jobs N, --json FILE (default BENCH_sweep.json),
//        --cache[=DIR]/--no-cache (result cache), --timeout MS, --retries N,
//        --shard I/N (run one round-robin slice and emit a shard document
//        for tools/vexmerge), --cache-gc SIZE (post-sweep cache eviction).
#include <iostream>
#include <vector>

#include "harness/shard.hpp"
#include "harness/sweep.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto opt = harness::ExperimentOptions::from_cli(cli);

  std::cout << "Figure 14: CCSI speedup over CSMT (%)\n"
            << "paper averages: 2T NS 6.1 / 2T AS 8.7 / 4T NS 3.5 / 4T AS 7.5\n\n";

  // Per workload and thread count: the CSMT baseline followed by CCSI under
  // both communication policies — 6 points per workload.
  std::vector<harness::SweepPoint> points;
  for (const wl::WorkloadSpec& spec : wl::paper_workloads()) {
    for (int threads : {2, 4}) {
      const std::string suffix = "/" + std::to_string(threads) + "T";
      points.push_back({spec.name + "/CSMT" + suffix,
                        opt.machine(threads, Technique::csmt()), spec.name,
                        opt});
      for (CommPolicy comm : {CommPolicy::kNoSplit, CommPolicy::kAlwaysSplit}) {
        const Technique t = Technique::ccsi(comm);
        points.push_back({spec.name + "/" + t.name() + suffix,
                          opt.machine(threads, t), spec.name, opt});
      }
    }
  }
  const std::vector<RunResult> results =
      harness::run_sweep_and_dump(cli, "fig14_ccsi_over_csmt", points);

  if (harness::ShardSpec::from_cli(cli).active) {
    std::cout << "shard run: tables skipped; merge the shard JSONs with "
                 "tools/vexmerge\n";
    return 0;
  }

  Table table({"workload", "2T NS", "2T AS", "4T NS", "4T AS"});
  std::vector<double> avg(4, 0.0);
  int n = 0;
  for (const wl::WorkloadSpec& spec : wl::paper_workloads()) {
    std::vector<std::string> row{spec.name};
    int col = 0;
    for (int threads : {2, 4}) {
      const std::string suffix = "/" + std::to_string(threads) + "T";
      const RunResult& base = harness::result_for(
          points, results, spec.name + "/CSMT" + suffix);
      for (CommPolicy comm : {CommPolicy::kNoSplit, CommPolicy::kAlwaysSplit}) {
        const RunResult& ccsi = harness::result_for(
            points, results,
            spec.name + "/" + Technique::ccsi(comm).name() + suffix);
        const double s = speedup(ccsi.ipc(), base.ipc());
        avg[static_cast<std::size_t>(col)] += s;
        row.push_back(Table::pct(s));
        ++col;
      }
    }
    ++n;
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg_row{"avg"};
  for (double a : avg) avg_row.push_back(Table::pct(a / n));
  table.add_row(std::move(avg_row));

  if (cli.get_bool("csv", false))
    std::cout << table.to_csv();
  else
    std::cout << table.to_text();
  std::cout << "\nShape check: AS >= NS on average; gains largest for "
               "low-ILP-heavy mixes (llll) under NS and for comm-heavy "
               "high-ILP mixes under AS.\n";
  return 0;
}
