// Figure 16: absolute IPC of all eight multithreading techniques, averaged
// over the nine workload mixes, for the 2-thread and 4-thread machines.
//
// Flags: --scale, --budget, --timeslice, --seed, --quick, --paper, --csv,
//        --per-workload (print each mix's IPC too).
#include <iostream>
#include <map>
#include <vector>

#include "harness/experiments.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto opt = harness::ExperimentOptions::from_cli(cli);
  const bool per_workload = cli.get_bool("per-workload", false);

  std::cout << "Figure 16: absolute IPC of all techniques (avg over the nine "
               "mixes)\n\n";

  std::vector<std::string> headers{"technique", "2T IPC", "4T IPC"};
  Table table(headers);
  std::map<std::string, Table> detail;

  for (const Technique& t : Technique::kAll) {
    std::vector<std::string> row{t.name()};
    for (int threads : {2, 4}) {
      std::vector<double> ipcs;
      for (const wl::WorkloadSpec& spec : wl::paper_workloads()) {
        const RunResult r =
            harness::run_workload(spec.name, threads, t, opt);
        ipcs.push_back(r.ipc());
        if (per_workload) {
          const std::string key =
              t.name() + " " + std::to_string(threads) + "T";
          auto [it, inserted] =
              detail.try_emplace(key, Table({"workload", "IPC"}));
          it->second.add_row({spec.name, Table::fmt(r.ipc())});
        }
      }
      row.push_back(Table::fmt(mean(ipcs)));
    }
    table.add_row(std::move(row));
  }

  if (cli.get_bool("csv", false))
    std::cout << table.to_csv();
  else
    std::cout << table.to_text();

  for (auto& [key, t] : detail) {
    std::cout << "\n" << key << "\n" << t.to_text();
  }

  std::cout << "\nShape check (paper): CCSI AS ~= SMT at 2T; split-issue "
               "shrinks the CSMT-vs-SMT gap (27% -> 13% at 4T); ordering "
               "CSMT < CCSI NS < CCSI AS and SMT < COSI < OOSI per comm "
               "policy.\n";
  return 0;
}
