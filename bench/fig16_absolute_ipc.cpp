// Figure 16: absolute IPC of all eight multithreading techniques, averaged
// over the nine workload mixes, for the 2-thread and 4-thread machines.
//
// All 144 simulation points (8 techniques x 2 thread counts x 9 mixes) run
// through the parallel sweep engine: --jobs N picks the worker count
// (results are bit-identical for any N) and the raw per-point statistics
// land in a JSON trajectory.
//
// Flags: --cc NAME, --cc-verify, --config FILE (base machine description),
//        --mem fixed|hierarchy (memory backend; default fixed),
//        --scale, --budget, --timeslice, --seed, --quick, --paper, --csv,
//        --per-workload (print each mix's IPC too), --jobs N, --progress N,
//        --json FILE (default BENCH_fig16_absolute_ipc.json),
//        --cache[=DIR]/--no-cache (result cache), --timeout MS, --retries N,
//        --shard I/N (run one round-robin slice and emit a shard document
//        for tools/vexmerge), --cache-gc SIZE (post-sweep cache eviction).
#include <iostream>
#include <string>
#include <vector>

#include "harness/shard.hpp"
#include "harness/sweep.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto opt = harness::ExperimentOptions::from_cli(cli);
  const bool per_workload = cli.get_bool("per-workload", false);

  std::cout << "Figure 16: absolute IPC of all techniques (avg over the nine "
               "mixes)\n\n";

  auto label_of = [](const Technique& t, int threads,
                     const std::string& mix) {
    return t.name() + "/" + std::to_string(threads) + "T/" + mix;
  };

  std::vector<harness::SweepPoint> points;
  for (const Technique& t : Technique::kAll)
    for (const int threads : {2, 4})
      for (const wl::WorkloadSpec& spec : wl::paper_workloads())
        points.push_back({label_of(t, threads, spec.name),
                          opt.machine(threads, t), spec.name, opt});
  const std::vector<RunResult> results =
      harness::run_sweep_and_dump(cli, "fig16_absolute_ipc", points);

  if (harness::ShardSpec::from_cli(cli).active) {
    std::cout << "shard run: tables skipped; merge the shard JSONs with "
                 "tools/vexmerge\n";
    return 0;
  }

  Table table({"technique", "2T IPC", "4T IPC"});
  for (const Technique& t : Technique::kAll) {
    std::vector<std::string> row{t.name()};
    for (const int threads : {2, 4}) {
      std::vector<double> ipcs;
      for (const wl::WorkloadSpec& spec : wl::paper_workloads())
        ipcs.push_back(
            harness::result_for(points, results, label_of(t, threads, spec.name))
                .ipc());
      row.push_back(Table::fmt(mean(ipcs)));
    }
    table.add_row(std::move(row));
  }

  if (cli.get_bool("csv", false))
    std::cout << table.to_csv();
  else
    std::cout << table.to_text();

  if (per_workload) {
    for (const Technique& t : Technique::kAll) {
      for (const int threads : {2, 4}) {
        Table detail({"workload", "IPC"});
        for (const wl::WorkloadSpec& spec : wl::paper_workloads())
          detail.add_row({spec.name,
                          Table::fmt(harness::result_for(
                                         points, results,
                                         label_of(t, threads, spec.name))
                                         .ipc())});
        std::cout << "\n" << t.name() << " " << threads << "T\n"
                  << detail.to_text();
      }
    }
  }

  std::cout << "\nShape check (paper): CCSI AS ~= SMT at 2T; split-issue "
               "shrinks the CSMT-vs-SMT gap (27% -> 13% at 4T); ordering "
               "CSMT < CCSI NS < CCSI AS and SMT < COSI < OOSI per comm "
               "policy.\n";
  return 0;
}
