// Ablation A1: cluster renaming on/off (Section IV).
//
// Renaming statically rotates each thread's clusters; without it every
// thread's code competes for the compiler's favourite clusters and both
// CSMT and CCSI lose most merging opportunities.
//
// All simulation points run through the parallel sweep engine; --jobs N
// picks the worker count (results are bit-identical for any N) and the raw
// per-point statistics land in a JSON trajectory file.
//
// Flags: --cc NAME, --cc-verify, --config FILE (base machine description),
//        --mem fixed|hierarchy (memory backend; default fixed),
//        --scale, --budget, --timeslice, --seed, --quick, --paper, --csv,
//        --jobs N, --progress N, --flush N, --json FILE,
//        --cache[=DIR]/--no-cache (result cache), --timeout MS, --retries N,
//        --shard I/N (run one round-robin slice and emit a shard document
//        for tools/vexmerge), --cache-gc SIZE (post-sweep cache eviction).
#include <iostream>
#include <vector>

#include "harness/shard.hpp"
#include "harness/sweep.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "workloads/workloads.hpp"

namespace {

std::string label_of(const char* wname, const vexsim::Technique& t,
                     bool renamed) {
  return std::string(wname) + "/" + t.name() +
         (renamed ? "/renamed" : "/identity");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto opt = harness::ExperimentOptions::from_cli(cli);

  std::cout << "Ablation: cluster renaming (4-thread machine)\n\n";

  const std::vector<const char*> workloads = {"llll", "mmmm", "hhhh"};
  const std::vector<Technique> techniques = {
      Technique::csmt(), Technique::ccsi(CommPolicy::kAlwaysSplit),
      Technique::smt()};
  std::vector<harness::SweepPoint> points;
  for (const char* wname : workloads) {
    for (const Technique& t : techniques) {
      for (bool renamed : {true, false}) {
        MachineConfig cfg = opt.machine(4, t);
        cfg.cluster_renaming = renamed;
        points.push_back({label_of(wname, t, renamed), cfg, wname, opt});
      }
    }
  }
  const std::vector<RunResult> results =
      harness::run_sweep_and_dump(cli, "abl_cluster_renaming", points);

  if (harness::ShardSpec::from_cli(cli).active) {
    std::cout << "shard run: tables skipped; merge the shard JSONs with "
                 "tools/vexmerge\n";
    return 0;
  }

  Table table({"workload", "technique", "IPC renamed", "IPC identity",
               "renaming gain"});
  for (const char* wname : workloads) {
    for (const Technique& t : techniques) {
      const RunResult& with_ren =
          harness::result_for(points, results, label_of(wname, t, true));
      const RunResult& without =
          harness::result_for(points, results, label_of(wname, t, false));
      table.add_row({wname, t.name(), Table::fmt(with_ren.ipc()),
                     Table::fmt(without.ipc()),
                     Table::pct(speedup(with_ren.ipc(), without.ipc()))});
    }
  }
  if (cli.get_bool("csv", false))
    std::cout << table.to_csv();
  else
    std::cout << table.to_text();
  std::cout << "\nShape check: renaming gains are largest for cluster-level "
               "merging (CSMT/CCSI), where whole-cluster conflicts dominate.\n";
  return 0;
}
