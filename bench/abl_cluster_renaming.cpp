// Ablation A1: cluster renaming on/off (Section IV).
//
// Renaming statically rotates each thread's clusters; without it every
// thread's code competes for the compiler's favourite clusters and both
// CSMT and CCSI lose most merging opportunities.
#include <iostream>

#include "harness/experiments.hpp"
#include "stats/table.hpp"
#include "util/cli.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace vexsim;
  const Cli cli(argc, argv);
  const auto opt = harness::ExperimentOptions::from_cli(cli);

  std::cout << "Ablation: cluster renaming (4-thread machine)\n\n";
  Table table({"workload", "technique", "IPC renamed", "IPC identity",
               "renaming gain"});
  for (const char* wname : {"llll", "mmmm", "hhhh"}) {
    for (const Technique& t :
         {Technique::csmt(), Technique::ccsi(CommPolicy::kAlwaysSplit),
          Technique::smt()}) {
      MachineConfig on = MachineConfig::paper(4, t);
      MachineConfig off = on;
      off.cluster_renaming = false;
      const RunResult with_ren = harness::run_workload_on(on, wname, opt);
      const RunResult without = harness::run_workload_on(off, wname, opt);
      table.add_row({wname, t.name(), Table::fmt(with_ren.ipc()),
                     Table::fmt(without.ipc()),
                     Table::pct(speedup(with_ren.ipc(), without.ipc()))});
    }
  }
  std::cout << table.to_text();
  std::cout << "\nShape check: renaming gains are largest for cluster-level "
               "merging (CSMT/CCSI), where whole-cluster conflicts dominate.\n";
  return 0;
}
