# Runs a sweep-based bench twice (--jobs 1 vs --jobs 8) and requires the
# emitted JSON trajectory files to be byte-identical. TAG keeps the scratch
# files of concurrently-running determinism tests apart.
if(NOT TAG)
  set(TAG "sweep")
endif()
set(serial "${OUT_DIR}/${TAG}_serial.json")
set(par "${OUT_DIR}/${TAG}_parallel.json")

execute_process(COMMAND ${BENCH} --quick --jobs 1 --json ${serial}
                RESULT_VARIABLE rc1 OUTPUT_QUIET)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "serial bench run failed with ${rc1}")
endif()

execute_process(COMMAND ${BENCH} --quick --jobs 8 --json ${par}
                RESULT_VARIABLE rc2 OUTPUT_QUIET)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "parallel bench run failed with ${rc2}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${serial} ${par}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "sweep JSON differs between --jobs 1 and --jobs 8")
endif()
