# Result-cache round trip: run a sweep bench twice against a fresh cache
# directory and require
#   (1) byte-identical JSON trajectories between the cold and warm runs, and
#   (2) the warm run served >= 90% of its points from the cache
# (the hit/total counts come from the "served K/N points from result cache"
# summary the sweep engine prints on stderr).
#
# Arguments: BENCH (bench executable), TAG (scratch-file prefix),
#            OUT_DIR (scratch directory).
if(NOT TAG)
  set(TAG "sweep")
endif()
set(cache_dir "${OUT_DIR}/${TAG}_cache_dir")
set(cold "${OUT_DIR}/${TAG}_cache_cold.json")
set(warm "${OUT_DIR}/${TAG}_cache_warm.json")
file(REMOVE_RECURSE ${cache_dir})

execute_process(COMMAND ${BENCH} --quick --cache ${cache_dir} --json ${cold}
                RESULT_VARIABLE rc1 OUTPUT_QUIET ERROR_VARIABLE err1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "cold-cache bench run failed with ${rc1}: ${err1}")
endif()

execute_process(COMMAND ${BENCH} --quick --cache ${cache_dir} --json ${warm}
                RESULT_VARIABLE rc2 OUTPUT_QUIET ERROR_VARIABLE err2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "warm-cache bench run failed with ${rc2}: ${err2}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${cold} ${warm}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "sweep JSON differs between the cold-cache and warm-cache runs — "
          "cached results are no longer bit-identical to fresh simulations")
endif()

string(REGEX MATCH "served ([0-9]+)/([0-9]+) points from result cache"
       served "${err2}")
if(NOT served)
  message(FATAL_ERROR
          "warm run printed no cache summary line; stderr was: ${err2}")
endif()
set(hits ${CMAKE_MATCH_1})
set(total ${CMAKE_MATCH_2})
math(EXPR scaled_hits "${hits} * 10")
math(EXPR scaled_need "${total} * 9")
if(total EQUAL 0 OR scaled_hits LESS scaled_need)
  message(FATAL_ERROR
          "warm run served only ${hits}/${total} points from the cache "
          "(need >= 90%)")
endif()
