# Sharded-sweep cache-behaviour checks for one bench:
#   (1) four UNcached shard processes + vexmerge reproduce the checked-in
#       1-process golden trajectory byte-for-byte (no cache anywhere, so the
#       "cached" provenance fields match the golden run),
#   (2) a warm single-shard re-run against a shared cache directory serves
#       >= 90% of its points from the cache and emits a byte-identical shard
#       document,
#   (3) `--cache-gc 0` evicts every record and leaves the index consistent:
#       the index file shrinks back to its header and no record files remain,
#       and a later store works against the emptied directory.
#
# Arguments: BENCH (bench executable), MERGE (vexmerge executable),
#            GOLDEN (checked-in golden JSON for the bench's plain --quick
#            run), TAG (scratch-file prefix), OUT_DIR (scratch directory).
if(NOT TAG)
  set(TAG "shardcache")
endif()

# --- (1) uncached shards vs the golden trajectory -------------------------
set(shard_files "")
foreach(i RANGE 1 4)
  set(shard_out "${OUT_DIR}/${TAG}_nocache_shard${i}of4.json")
  execute_process(COMMAND ${BENCH} --quick --shard ${i}/4 --json ${shard_out}
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "uncached shard ${i}/4 run failed with ${rc}: ${err}")
  endif()
  list(APPEND shard_files ${shard_out})
endforeach()
set(merged "${OUT_DIR}/${TAG}_nocache_merged.json")
execute_process(COMMAND ${MERGE} --out ${merged} ${shard_files}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vexmerge failed with ${rc}: ${err}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${merged} ${GOLDEN}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "merged uncached 4-shard trajectory differs from the golden "
          "1-process trajectory ${GOLDEN}")
endif()
message(STATUS "${TAG}: uncached 4-shard merge matches the golden trajectory")

# --- (2) warm single-shard re-run hits the cache --------------------------
set(cache_dir "${OUT_DIR}/${TAG}_cache_dir")
file(REMOVE_RECURSE ${cache_dir})
set(cold "${OUT_DIR}/${TAG}_warmprobe_cold.json")
set(warm "${OUT_DIR}/${TAG}_warmprobe_warm.json")
execute_process(COMMAND ${BENCH} --quick --shard 1/4 --cache ${cache_dir}
                        --json ${cold}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold shard run failed with ${rc}: ${err}")
endif()
execute_process(COMMAND ${BENCH} --quick --shard 1/4 --cache ${cache_dir}
                        --json ${warm}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm shard run failed with ${rc}: ${err}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${cold} ${warm}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "shard document differs between the cold- and warm-cache runs")
endif()
string(REGEX MATCH "served ([0-9]+)/([0-9]+) points from result cache"
       served "${err}")
if(NOT served)
  message(FATAL_ERROR
          "warm shard run printed no cache summary line; stderr was: ${err}")
endif()
set(hits ${CMAKE_MATCH_1})
set(total ${CMAKE_MATCH_2})
math(EXPR scaled_hits "${hits} * 10")
math(EXPR scaled_need "${total} * 9")
if(total EQUAL 0 OR scaled_hits LESS scaled_need)
  message(FATAL_ERROR
          "warm shard run served only ${hits}/${total} points from the "
          "cache (need >= 90%)")
endif()
message(STATUS "${TAG}: warm shard re-run served ${hits}/${total} points")

# --- (3) --cache-gc leaves the index consistent ---------------------------
set(gc_out "${OUT_DIR}/${TAG}_gc.json")
execute_process(COMMAND ${BENCH} --quick --shard 1/4 --cache ${cache_dir}
                        --cache-gc 0 --json ${gc_out}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--cache-gc run failed with ${rc}: ${err}")
endif()
if(NOT err MATCHES "cache-gc evicted")
  message(FATAL_ERROR
          "--cache-gc run printed no eviction summary; stderr was: ${err}")
endif()
file(GLOB leftover "${cache_dir}/*.json")
if(leftover)
  message(FATAL_ERROR
          "--cache-gc 0 left record files behind: ${leftover}")
endif()
file(READ "${cache_dir}/cache.index" index_text)
string(STRIP "${index_text}" index_text)
if(NOT index_text STREQUAL "vexsim-cache-index v1")
  message(FATAL_ERROR
          "--cache-gc 0 left a non-empty index: '${index_text}'")
endif()
# The emptied cache must still be usable: a fresh run repopulates it and the
# record count matches the index line count.
execute_process(COMMAND ${BENCH} --quick --shard 1/4 --cache ${cache_dir}
                        --json ${gc_out}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "post-gc repopulation run failed with ${rc}: ${err}")
endif()
file(GLOB records "${cache_dir}/*.json")
list(LENGTH records nrecords)
file(STRINGS "${cache_dir}/cache.index" index_lines)
list(POP_FRONT index_lines header)
list(LENGTH index_lines nlines)
if(NOT header STREQUAL "vexsim-cache-index v1")
  message(FATAL_ERROR "rebuilt index has a bad header: '${header}'")
endif()
if(NOT nrecords EQUAL nlines)
  message(FATAL_ERROR
          "index/record mismatch after gc + repopulation: ${nrecords} record "
          "files vs ${nlines} index lines")
endif()
if(nrecords EQUAL 0)
  message(FATAL_ERROR "post-gc repopulation stored no records")
endif()
message(STATUS
        "${TAG}: --cache-gc emptied and repopulated a consistent index "
        "(${nrecords} records)")
