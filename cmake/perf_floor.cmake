# Perf-floor gate: compare a BENCH_sim_speed.json trajectory against the
# checked-in absolute throughput floors and fail when any point's fast-engine
# cycles/s drops more than 20% below its floor. The floors carry several-fold
# headroom over typical numbers (see tests/golden/sim_speed_floor.json), so a
# failure means an order-of-magnitude hot-path regression, not timing noise.
#
# Arguments: BENCH_JSON (measured trajectory), FLOOR_JSON (floor file).
file(READ "${BENCH_JSON}" bench)
file(READ "${FLOOR_JSON}" floors)

string(JSON npoints LENGTH "${bench}" points)
if(npoints EQUAL 0)
  message(FATAL_ERROR "perf floor: no points in ${BENCH_JSON}")
endif()
math(EXPR last "${npoints} - 1")

set(checked 0)
foreach(i RANGE ${last})
  string(JSON label GET "${bench}" points ${i} label)
  string(JSON fast GET "${bench}" points ${i} cycles_per_sec_fast)
  string(JSON floor ERROR_VARIABLE err GET "${floors}" floors "${label}")
  if(err)
    message(STATUS "perf floor: no floor for '${label}', skipping")
    continue()
  endif()
  # Integer arithmetic: CMake's numeric if() is unreliable on decimals.
  string(REGEX REPLACE "\\..*$" "" fast_int "${fast}")
  math(EXPR limit "${floor} * 8 / 10")
  if(fast_int LESS limit)
    message(FATAL_ERROR
            "perf floor: ${label} measured ${fast_int} cycles/s, more than "
            "20% below the floor ${floor} (limit ${limit}). The hot path "
            "regressed badly; see tests/golden/sim_speed_floor.json.")
  endif()
  message(STATUS
          "perf floor: ${label} ${fast_int} cycles/s >= limit ${limit} (ok)")
  math(EXPR checked "${checked} + 1")
endforeach()

if(checked EQUAL 0)
  message(FATAL_ERROR "perf floor: no point matched any floor entry")
endif()
