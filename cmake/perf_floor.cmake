# Perf-floor gate: compare a BENCH_sim_speed.json trajectory against the
# checked-in absolute throughput floors and fail when any point's fast-engine
# cycles/s drops more than 20% below its floor. The floors carry several-fold
# headroom over typical numbers (see tests/golden/sim_speed_floor.json), so a
# failure means an order-of-magnitude hot-path regression, not timing noise.
#
# Arguments: BENCH_JSON (measured trajectory), FLOOR_JSON (floor file).
file(READ "${BENCH_JSON}" bench)
file(READ "${FLOOR_JSON}" floors)

string(JSON npoints LENGTH "${bench}" points)
if(npoints EQUAL 0)
  message(FATAL_ERROR "perf floor: no points in ${BENCH_JSON}")
endif()
math(EXPR last "${npoints} - 1")

set(checked 0)
foreach(i RANGE ${last})
  string(JSON label GET "${bench}" points ${i} label)
  string(JSON fast GET "${bench}" points ${i} cycles_per_sec_fast)
  string(JSON floor ERROR_VARIABLE err GET "${floors}" floors "${label}")
  if(err)
    message(STATUS "perf floor: no floor for '${label}', skipping")
    continue()
  endif()
  # Integer arithmetic: CMake's numeric if() is unreliable on decimals.
  string(REGEX REPLACE "\\..*$" "" fast_int "${fast}")
  math(EXPR limit "${floor} * 8 / 10")
  if(fast_int LESS limit)
    message(FATAL_ERROR
            "perf floor: ${label} measured ${fast_int} cycles/s, more than "
            "20% below the floor ${floor} (limit ${limit}). The hot path "
            "regressed badly; see tests/golden/sim_speed_floor.json.")
  endif()
  message(STATUS
          "perf floor: ${label} ${fast_int} cycles/s >= limit ${limit} (ok)")
  math(EXPR checked "${checked} + 1")
endforeach()

if(checked EQUAL 0)
  message(FATAL_ERROR "perf floor: no point matched any floor entry")
endif()

# Result-cache probe floors: the "cache_probe" array carries integer
# records/sec rates per population size; each is gated against
# probe_floors.records_<N>.<metric> with the same 20% tolerance. Every GET
# here is ERROR_VARIABLE-guarded so older trajectories (no cache_probe
# block) and partial floor files stay acceptable.
string(JSON nprobe ERROR_VARIABLE probe_err LENGTH "${bench}" cache_probe)
if(probe_err)
  message(STATUS "perf floor: no cache_probe block in ${BENCH_JSON}, skipping")
  set(nprobe 0)
endif()
if(nprobe GREATER 0)
  set(probe_checked 0)
  math(EXPR probe_last "${nprobe} - 1")
  foreach(i RANGE ${probe_last})
    string(JSON records GET "${bench}" cache_probe ${i} records)
    foreach(metric hit_per_sec miss_probe_per_sec miss_unindexed_per_sec)
      string(JSON rate ERROR_VARIABLE err
             GET "${bench}" cache_probe ${i} ${metric})
      if(err)
        continue()
      endif()
      string(JSON floor ERROR_VARIABLE err
             GET "${floors}" probe_floors "records_${records}" ${metric})
      if(err)
        message(STATUS
                "perf floor: no probe floor for records_${records}.${metric},"
                " skipping")
        continue()
      endif()
      math(EXPR limit "${floor} * 8 / 10")
      if(rate LESS limit)
        message(FATAL_ERROR
                "perf floor: cache probe records_${records}.${metric} "
                "measured ${rate}/s, more than 20% below the floor ${floor} "
                "(limit ${limit}). Cache probing is no longer O(1); see "
                "tests/golden/sim_speed_floor.json.")
      endif()
      message(STATUS
              "perf floor: records_${records}.${metric} ${rate}/s >= limit "
              "${limit} (ok)")
      math(EXPR probe_checked "${probe_checked} + 1")
    endforeach()
  endforeach()
  if(probe_checked EQUAL 0)
    message(STATUS "perf floor: cache_probe present but no floors matched")
  endif()
endif()
