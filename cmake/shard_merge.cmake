# Sharded-sweep merge check: run the same sweep as N independent shard
# processes for each N in SHARDS, fold the shard documents with vexmerge,
# and require the merged trajectory to be byte-identical to the one-process
# `--jobs 8` run. All legs share one result-cache directory, so every point
# is simulated once (by whichever leg reaches it first) and the provenance
# fields agree across legs; byte-identity then checks the shard/merge
# plumbing, not cache behaviour (cmake/shard_cache.cmake covers the
# uncached-vs-golden and cache-maintenance legs).
#
# For N > 1 the script also merges all shards but the last and requires
# vexmerge to exit 1 with a resume manifest naming the missing points.
#
# Arguments: CMD (bench or vexplore executable), EXTRA_ARGS (space-separated
#            flags appended to every run, e.g. "--quick" or
#            "--template x.conf --sample 24"), MERGE (vexmerge executable),
#            TAG (scratch-file prefix), OUT_DIR (scratch directory),
#            SHARDS (semicolon list of shard counts, default "4").
if(NOT TAG)
  set(TAG "shard")
endif()
separate_arguments(EXTRA_ARGS UNIX_COMMAND "${EXTRA_ARGS}")
if(NOT SHARDS)
  set(SHARDS "4")
endif()
set(cache_dir "${OUT_DIR}/${TAG}_shard_cache")
set(ref "${OUT_DIR}/${TAG}_shard_ref.json")
file(REMOVE_RECURSE ${cache_dir})

execute_process(COMMAND ${CMD} ${EXTRA_ARGS} --jobs 8 --cache ${cache_dir}
                        --json ${ref}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "one-process reference run failed with ${rc}: ${err}")
endif()

foreach(count IN LISTS SHARDS)
  set(shard_files "")
  foreach(i RANGE 1 ${count})
    set(shard_out "${OUT_DIR}/${TAG}_shard${i}of${count}.json")
    execute_process(COMMAND ${CMD} ${EXTRA_ARGS} --jobs 2
                            --cache ${cache_dir} --shard ${i}/${count}
                            --json ${shard_out}
                    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "shard ${i}/${count} run failed with ${rc}: ${err}")
    endif()
    list(APPEND shard_files ${shard_out})
  endforeach()

  set(merged "${OUT_DIR}/${TAG}_merged_${count}.json")
  execute_process(COMMAND ${MERGE} --out ${merged} ${shard_files}
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "vexmerge of ${count} shards failed with ${rc}: ${err}")
  endif()

  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${merged} ${ref}
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "merged ${count}-shard trajectory differs from the one-process "
            "run — the shard/merge protocol is no longer byte-exact")
  endif()
  message(STATUS "${TAG}: ${count} shards merge byte-identical to one process")

  if(count GREATER 1)
    # Drop the last shard: vexmerge must refuse to emit a trajectory and
    # write a resume manifest instead.
    list(POP_BACK shard_files)
    set(partial_out "${OUT_DIR}/${TAG}_partial_${count}.json")
    set(resume_out "${OUT_DIR}/${TAG}_resume_${count}.json")
    execute_process(COMMAND ${MERGE} --out ${partial_out}
                            --resume ${resume_out} ${shard_files}
                    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
    if(NOT rc EQUAL 1)
      message(FATAL_ERROR
              "vexmerge with a missing shard exited ${rc}, expected 1")
    endif()
    if(EXISTS ${partial_out})
      message(FATAL_ERROR
              "vexmerge wrote ${partial_out} despite missing points")
    endif()
    file(READ ${resume_out} resume)
    if(NOT resume MATCHES "\"resume\": true" OR
       NOT resume MATCHES "\"missing\"")
      message(FATAL_ERROR
              "resume manifest ${resume_out} lacks the resume/missing fields")
    endif()
  endif()
endforeach()
