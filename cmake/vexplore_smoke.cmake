# vexplore end-to-end smoke:
#   (1) the report is byte-identical between --jobs 1 and --jobs 8,
#   (2) a warm-cache re-run serves >= 90% of points from the result cache
#       and still emits byte-identical report JSON,
#   (3) the template's memory-backend axis is live: at least one sampled
#       machine runs the hierarchy backend.
#
# Arguments: VEXPLORE (driver executable), TEMPLATE (DSE template file),
#            OUT_DIR (scratch directory).
set(cache_dir "${OUT_DIR}/vexplore_cache_dir")
set(serial "${OUT_DIR}/vexplore_serial.json")
set(cold "${OUT_DIR}/vexplore_cold.json")
set(warm "${OUT_DIR}/vexplore_warm.json")
file(REMOVE_RECURSE ${cache_dir})

execute_process(COMMAND ${VEXPLORE} --template ${TEMPLATE} --sample 32
                        --seed 7 --quick --jobs 1 --json ${serial}
                RESULT_VARIABLE rc1 OUTPUT_QUIET ERROR_VARIABLE err1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "vexplore --jobs 1 failed with ${rc1}: ${err1}")
endif()

execute_process(COMMAND ${VEXPLORE} --template ${TEMPLATE} --sample 32
                        --seed 7 --quick --jobs 8 --cache ${cache_dir}
                        --json ${cold}
                RESULT_VARIABLE rc2 OUTPUT_QUIET ERROR_VARIABLE err2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "vexplore --jobs 8 failed with ${rc2}: ${err2}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${serial} ${cold}
                RESULT_VARIABLE diff1)
if(NOT diff1 EQUAL 0)
  message(FATAL_ERROR
          "vexplore report differs between --jobs 1 and --jobs 8")
endif()

execute_process(COMMAND ${VEXPLORE} --template ${TEMPLATE} --sample 32
                        --seed 7 --quick --jobs 8 --cache ${cache_dir}
                        --json ${warm}
                RESULT_VARIABLE rc3 OUTPUT_QUIET ERROR_VARIABLE err3)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "warm-cache vexplore run failed with ${rc3}: ${err3}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${cold} ${warm}
                RESULT_VARIABLE diff2)
if(NOT diff2 EQUAL 0)
  message(FATAL_ERROR
          "vexplore report differs between the cold-cache and warm-cache "
          "runs — cached results are no longer bit-identical")
endif()

string(REGEX MATCH "served ([0-9]+)/([0-9]+) points from result cache"
       served "${err3}")
if(NOT served)
  message(FATAL_ERROR
          "warm run printed no cache summary line; stderr was: ${err3}")
endif()
set(hits ${CMAKE_MATCH_1})
set(total ${CMAKE_MATCH_2})
math(EXPR scaled_hits "${hits} * 10")
math(EXPR scaled_need "${total} * 9")
if(total EQUAL 0 OR scaled_hits LESS scaled_need)
  message(FATAL_ERROR
          "warm vexplore run served only ${hits}/${total} points from the "
          "cache (need >= 90%)")
endif()

file(READ ${serial} report)
if(NOT report MATCHES "hierarchy")
  message(FATAL_ERROR
          "no sampled point used the hierarchy memory backend — the "
          "template's memory axis is dead")
endif()
