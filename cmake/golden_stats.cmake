# Golden-stats check: run a bench at --quick and byte-compare its JSON
# trajectory against the checked-in golden file. Any difference means the
# simulator's cycle-level behaviour changed.
#
# Arguments: BENCH (bench executable), GOLDEN (checked-in golden JSON),
#            OUT_DIR (scratch directory), TAG (name for scratch files).
set(out "${OUT_DIR}/golden_check_${TAG}.json")

execute_process(
  COMMAND ${BENCH} --quick --json ${out}
  RESULT_VARIABLE run_rc
  OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "golden check: ${BENCH} --quick failed (rc=${run_rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${out} ${GOLDEN}
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR
          "golden check: ${out} differs from ${GOLDEN} — the simulator's "
          "statistics are no longer bit-identical to the golden trajectory. "
          "If the behaviour change is intentional, regenerate the golden "
          "file and explain the change in the PR.")
endif()
