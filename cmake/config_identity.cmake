# Machine-description identity: a bench run with --config CONFIG must emit a
# trajectory byte-identical to the same run on its hard-coded machine —
# configs/paper4x4.conf IS the paper machine, down to the cache fingerprints.
#
# Arguments: BENCH (bench executable), CONFIG (description file),
#            TAG (scratch-file prefix), OUT_DIR (scratch directory).
if(NOT TAG)
  set(TAG "config")
endif()
set(literal "${OUT_DIR}/${TAG}_literal.json")
set(described "${OUT_DIR}/${TAG}_described.json")

execute_process(COMMAND ${BENCH} --quick --json ${literal}
                RESULT_VARIABLE rc1 OUTPUT_QUIET ERROR_VARIABLE err1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "hard-coded bench run failed with ${rc1}: ${err1}")
endif()

execute_process(COMMAND ${BENCH} --quick --config ${CONFIG} --json ${described}
                RESULT_VARIABLE rc2 OUTPUT_QUIET ERROR_VARIABLE err2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "--config bench run failed with ${rc2}: ${err2}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${literal}
                        ${described}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "trajectory differs between the hard-coded machine and --config "
          "${CONFIG} — the description no longer reproduces the paper "
          "machine")
endif()
